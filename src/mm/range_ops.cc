#include "src/mm/range_ops.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <span>

#include "src/debug/lockdep.h"
#include "src/pt/mm_locks.h"
#include "src/reclaim/rmap.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

namespace {

// Deferred-cost histograms for the on-demand table COW path (paper Table 1).
LatencyHistogram& PteTableCowHistogram() {
  static LatencyHistogram& h =
      MetricsRegistry::Global().RegisterHistogram("fault_cow_pte_table_ns");
  return h;
}
LatencyHistogram& PmdTableCowHistogram() {
  static LatencyHistogram& h =
      MetricsRegistry::Global().RegisterHistogram("fault_cow_pmd_table_ns");
  return h;
}

// Number of split locks; hashing table frames across a small array mirrors the kernel's
// per-table page locks without per-frame storage.
constexpr size_t kSplitLockCount = 64;

// All 64 split locks are one lockdep class; no code path nests two of them (dedicate
// releases the lock before any further acquisition), which the validator enforces.
debug::LockClass g_pt_split_lock_class("mm::PtSplitLock");

bool TableIsEmpty(FrameAllocator& allocator, FrameId table) {
  const uint64_t* entries = allocator.TableEntries(table);
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    if (!LoadEntry(&entries[i]).IsNone()) {
      return false;
    }
  }
  return true;
}

}  // namespace

util::Mutex& PtSplitLock(FrameId table) {
  static std::array<util::Mutex, kSplitLockCount> locks;
  return locks[table % kSplitLockCount];
}

void PutMappedPage(FrameAllocator& allocator, Pte entry, bool huge) {
  FrameId frame = entry.frame();
  if (huge) {
    ODF_DCHECK(allocator.GetMeta(frame).IsCompoundHead());
    allocator.DecRef(frame);
    return;
  }
  PageMeta& meta = allocator.GetMeta(frame);
  allocator.DecRef(ResolveCompoundHead(meta, frame));
}

void DropPteTableReference(FrameAllocator& allocator, SwapSpace* swap,
                           reclaim::RmapRegistry* rmap, FrameId table) {
  if (allocator.DecPtShare(table) != 1) {
    return;
  }
  // Last reference: release the per-page references this table holds on behalf of all its
  // (former) sharers, then free the table frame itself. Swap entries release their slot.
  // The per-page drops go through DecRefBatch so the whole table costs one shared-pool lock
  // round-trip, not one per entry that hits refcount zero (docs/performance.md).
  uint64_t* entries = allocator.TableEntries(table);
  std::array<FrameId, kEntriesPerTable> heads;
  size_t mapped = 0;
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&entries[i]);
    if (entry.IsPresent()) {
      FrameId frame = entry.frame();
      if (rmap != nullptr) {
        rmap->Remove(frame, &entries[i]);
      }
      heads[mapped++] = ResolveCompoundHead(allocator.GetMeta(frame), frame);
      StoreEntry(&entries[i], Pte());
    } else if (entry.IsSwap()) {
      ODF_CHECK(swap != nullptr) << "swap entry without a swap device";
      swap->DecRef(entry.swap_slot());
      StoreEntry(&entries[i], Pte());
    } else if (entry.IsHwPoison()) {
      // Poison markers carry no references (the quarantine pin is the allocator's); the
      // tombstone simply dies with the table.
      StoreEntry(&entries[i], Pte());
    }
  }
  // The caller bumped every covered shard generation before dropping its last table
  // share (ZapRange's "unlink, bump, THEN drop" ordering); by the time this runs no
  // lock-free reader can pass its generation recheck.
  // odf-lint: allow(gen-before-free)
  allocator.DecRefBatch(std::span<const FrameId>(heads.data(), mapped));
  // The table was published (linked into at least one live tree), so a lock-free walker
  // may still be reading its (now empty) entries: defer the frame free past the grace
  // period. The caller drains the epoch before its leak checks can observe the deferral.
  PtEpoch::Global().Retire(&allocator, table);
}

void DropPmdTableReference(FrameAllocator& allocator, SwapSpace* swap,
                           reclaim::RmapRegistry* rmap, FrameId table) {
  if (allocator.DecPtShare(table) != 1) {
    return;
  }
  // Last reference: release whatever the PMD table maps — huge pages directly (batched),
  // PTE tables transitively (each of which batch-puts its own pages at zero).
  uint64_t* entries = allocator.TableEntries(table);
  std::array<FrameId, kEntriesPerTable> huge_heads;
  size_t huge_count = 0;
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&entries[i]);
    if (!entry.IsPresent()) {
      continue;
    }
    if (entry.IsHuge()) {
      ODF_DCHECK(allocator.GetMeta(entry.frame()).IsCompoundHead());
      if (rmap != nullptr) {
        rmap->Remove(entry.frame(), &entries[i], /*huge=*/true);
      }
      huge_heads[huge_count++] = entry.frame();
    } else {
      DropPteTableReference(allocator, swap, rmap, entry.frame());
    }
    StoreEntry(&entries[i], Pte());
  }
  // Same contract as DropPteTableReference: the caller's range invalidation already
  // bumped the covered generations.
  // odf-lint: allow(gen-before-free)
  allocator.DecRefBatch(std::span<const FrameId>(huge_heads.data(), huge_count));
  PtEpoch::Global().Retire(&allocator, table);  // Published table: epoch-deferred free.
}

FrameId DedicatePmdTable(AddressSpace& as, Vaddr pud_span_base, uint64_t* pud_slot,
                         AllocPolicy policy) {
  FrameAllocator& allocator = as.allocator();
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  Pte pud = LoadEntry(pud_slot);
  ODF_DCHECK(pud.IsPresent() && !pud.IsHuge());
  FrameId shared = pud.frame();

  // Allocate the private table BEFORE taking the split lock: a NOFAIL allocation may block
  // in direct reclaim (which takes the MmGate exclusively), and no lock may be held at a
  // quota-wait point (src/reclaim/mm_gate.h). The fixup path below frees the spare.
  FrameId dedicated = policy == AllocPolicy::kTry ? TryAllocPageTable(allocator)
                                                  : AllocPageTable(allocator);
  if (dedicated == kInvalidFrame) {
    // kTry only: nothing has been mutated; the caller unwinds or degrades.
    return kInvalidFrame;
  }

  debug::MutexGuard guard(PtSplitLock(shared), g_pt_split_lock_class);
  // Concurrent-faulter recheck: another thread may have dedicated this slot between our
  // pre-lock snapshot and the split-lock acquisition. Publishing the stale snapshot's
  // spare would clobber its repoint, so bail out and use what is there now. Identity is
  // the referenced frame — flag-only changes (a walker's accessed-bit fetch_or, a racing
  // fixup's writable re-enable) keep the same table and fall through to the share count.
  {
    Pte current = LoadEntry(pud_slot);
    if (!current.IsPresent() || current.IsHuge() || current.frame() != shared) {
      allocator.DecRef(dedicated);
      return current.IsPresent() && !current.IsHuge() ? current.frame() : kInvalidFrame;
    }
  }
  PageMeta& shared_meta = allocator.GetMeta(shared);
  uint32_t share = shared_meta.pt_share_count.load(std::memory_order_acquire);
  ODF_DCHECK(share >= 1);
  Vaddr span_end = pud_span_base + EntrySpan(PtLevel::kPud);
  if (share == 1) {
    allocator.DecRef(dedicated);  // The other sharers went away: the spare is unused.
    StoreEntry(pud_slot, pud.WithFlag(kPteWritable));
    as.tlb().InvalidateRange(pud_span_base, span_end);
    ++as.stats().pmd_table_fixups;
    CountVm(VmCounter::k_pmd_table_fixup);
    ODF_TRACE(fault_pmd_table_fixup, as.owner_pid(), pud_span_base, shared);
    return shared;
  }

  uint64_t* src = allocator.TableEntries(shared);
  uint64_t* dst = allocator.TableEntries(dedicated);
  // Collect first, then take every reference in two batch calls (huge-page refcounts and
  // PTE-table share counts), then publish the entries — all references exist before any
  // entry of the new table is visible.
  std::array<uint64_t, kEntriesPerTable> indices;
  std::array<FrameId, kEntriesPerTable> huge_heads;
  std::array<FrameId, kEntriesPerTable> pte_tables;
  size_t present = 0;
  size_t huge_count = 0;
  size_t table_count = 0;
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&src[i]);
    if (!entry.IsPresent()) {
      continue;
    }
    if (entry.IsHuge()) {
      // A reference on the 2 MiB compound page; both entries stay COW-protected.
      huge_heads[huge_count++] = entry.frame();
    } else {
      // The copy becomes one more sharer of the PTE table below.
      pte_tables[table_count++] = entry.frame();
    }
    indices[present++] = i;
  }
  allocator.IncRefBatch(std::span<const FrameId>(huge_heads.data(), huge_count));
  allocator.IncPtShareBatch(std::span<const FrameId>(pte_tables.data(), table_count));
  for (size_t k = 0; k < present; ++k) {
    uint64_t i = indices[k];
    Pte entry = LoadEntry(&src[i]);
    if (entry.IsWritable()) {
      Pte protected_entry = entry.WithoutFlag(kPteWritable);
      StoreEntry(&src[i], protected_entry);
      entry = protected_entry;
    }
    StoreEntry(&dst[i], entry);
    if (entry.IsHuge() && as.rmap() != nullptr) {
      // The copied PMD leaf is a brand-new mapping of the huge page (matching the IncRef
      // above); PTE-table pointers are not leaves and add no reverse-map entries.
      as.rmap()->Add(entry.frame(), &dst[i], /*huge=*/true);
    }
  }
  StoreEntry(pud_slot, Pte::Make(dedicated, kPtePresent | kPteWritable | kPteUser |
                                                (pud.flags() & kPteAccessed)));
  uint32_t previous = allocator.DecPtShare(shared);
  ODF_DCHECK(previous >= 2);
  (void)previous;
  as.tlb().InvalidateRange(pud_span_base, span_end);
  ++as.stats().pmd_table_cow_faults;
  CountVm(VmCounter::k_pmd_table_cow);
  if (tracing) {
    uint64_t ns = trace::NowNanos() - t0;
    ODF_TRACE(fault_cow_pmd_table, as.owner_pid(), pud_span_base, ns);
    PmdTableCowHistogram().RecordNanos(ns);
  }
  return dedicated;
}

bool EnsureExclusivePmdPath(AddressSpace& as, Vaddr va, AllocPolicy policy) {
  uint64_t* pud_slot = as.walker().FindEntry(as.pgd(), va, PtLevel::kPud);
  if (pud_slot == nullptr) {
    return true;
  }
  Pte pud = LoadEntry(pud_slot);
  if (!pud.IsPresent() || pud.IsHuge()) {
    return true;
  }
  if (as.allocator().GetMeta(pud.frame()).pt_share_count.load(std::memory_order_acquire) >
      1) {
    return DedicatePmdTable(as, EntryBase(va, PtLevel::kPud), pud_slot, policy) !=
           kInvalidFrame;
  }
  return true;
}

FrameId DedicatePteTable(AddressSpace& as, Vaddr chunk_base, uint64_t* pmd_slot,
                         AllocPolicy policy) {
  FrameAllocator& allocator = as.allocator();
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  Pte pmd = LoadEntry(pmd_slot);
  ODF_DCHECK(pmd.IsPresent() && !pmd.IsHuge());
  FrameId shared = pmd.frame();

  // Allocate the private table BEFORE taking the split lock (see DedicatePmdTable: no lock
  // may be held at a quota-wait point). The fixup path below frees the spare.
  FrameId dedicated = policy == AllocPolicy::kTry ? TryAllocPageTable(allocator)
                                                  : AllocPageTable(allocator);
  if (dedicated == kInvalidFrame) {
    // kTry only: nothing has been mutated; the caller unwinds or degrades.
    return kInvalidFrame;
  }

  debug::MutexGuard guard(PtSplitLock(shared), g_pt_split_lock_class);
  // Concurrent-faulter recheck (see DedicatePmdTable): a racing thread that won the split
  // lock first may already have repointed this PMD slot at its own dedicated table.
  {
    Pte current = LoadEntry(pmd_slot);
    if (!current.IsPresent() || current.IsHuge() || current.frame() != shared) {
      allocator.DecRef(dedicated);
      return current.IsPresent() && !current.IsHuge() ? current.frame() : kInvalidFrame;
    }
  }
  PageMeta& shared_meta = allocator.GetMeta(shared);
  uint32_t share = shared_meta.pt_share_count.load(std::memory_order_acquire);
  ODF_DCHECK(share >= 1);
  if (share == 1) {
    // The other sharers went away while we were faulting: the table is already ours.
    // Re-enable the hierarchical write permission and keep it (paper §3.4: "both the
    // previously shared table and the new table become dedicated").
    allocator.DecRef(dedicated);
    StoreEntry(pmd_slot, pmd.WithFlag(kPteWritable));
    as.tlb().InvalidateRange(chunk_base, chunk_base + kPteTableSpan);
    ++as.stats().pte_table_fixups;
    CountVm(VmCounter::k_pte_table_fixup);
    ODF_TRACE(fault_pte_table_fixup, as.owner_pid(), chunk_base, shared);
    return shared;
  }

  uint64_t* src = allocator.TableEntries(shared);
  uint64_t* dst = allocator.TableEntries(dedicated);
  // This is the deferred cost the paper measures in Table 1: one metadata lookup per entry,
  // and (now) ONE batched refcount call for the whole table. References are taken before any
  // entry of the new table is published.
  std::array<uint64_t, kEntriesPerTable> indices;
  std::array<FrameId, kEntriesPerTable> heads;
  size_t present = 0;
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&src[i]);
    if (entry.IsSwap()) {
      // Swapped page: the private copy references the immutable slot too; each side will
      // swap in its own copy on fault (trivially correct COW for swapped pages).
      ODF_CHECK(as.swap_space() != nullptr);
      as.swap_space()->IncRef(entry.swap_slot());
      StoreEntry(&dst[i], entry);
      continue;
    }
    if (entry.IsHwPoison()) {
      // Poison markers copy verbatim: the dedicated table remembers the dead VA too, and
      // markers are refcount-free so there is nothing to IncRef.
      StoreEntry(&dst[i], entry);
      continue;
    }
    if (!entry.IsPresent()) {
      continue;
    }
    FrameId frame = entry.frame();
    PageMeta& meta = allocator.GetMeta(frame);
    heads[present] = ResolveCompoundHead(meta, frame);
    indices[present] = i;
    ++present;
  }
  allocator.IncRefBatch(std::span<const FrameId>(heads.data(), present));
  for (size_t k = 0; k < present; ++k) {
    uint64_t i = indices[k];
    Pte entry = LoadEntry(&src[i]);
    // Write-protect the entry in both copies so the first write to each data page still
    // triggers a per-page COW; the accessed bit is duplicated as-is (§3.2).
    if (entry.IsWritable()) {
      Pte protected_entry = entry.WithoutFlag(kPteWritable);
      StoreEntry(&src[i], protected_entry);
      entry = protected_entry;
    }
    StoreEntry(&dst[i], entry);
    if (as.rmap() != nullptr) {
      // Each copied PTE is a new mapping of the page, mirroring the IncRef above. The
      // reverse map keys by the frame id AS STORED in the entry (a split-huge tail
      // registers under head+i), so entry.frame() is correct even for compound frames.
      as.rmap()->Add(entry.frame(), &dst[i]);
    }
  }
  // Repoint this address space's PMD entry at the private copy, restoring write permission
  // at the PMD level, and drop our reference to the shared table.
  StoreEntry(pmd_slot, Pte::Make(dedicated, kPtePresent | kPteWritable | kPteUser |
                                                (pmd.flags() & kPteAccessed)));
  uint32_t previous = allocator.DecPtShare(shared);
  ODF_DCHECK(previous >= 2);
  (void)previous;
  as.tlb().InvalidateRange(chunk_base, chunk_base + kPteTableSpan);
  ++as.stats().pte_table_cow_faults;
  CountVm(VmCounter::k_pte_table_cow);
  if (tracing) {
    uint64_t ns = trace::NowNanos() - t0;
    ODF_TRACE(fault_cow_pte_table, as.owner_pid(), chunk_base, ns);
    PteTableCowHistogram().RecordNanos(ns);
  }
  return dedicated;
}

bool RangeHasLiveVma(const AddressSpace& as, Vaddr lo, Vaddr hi) {
  if (lo >= hi) {
    return false;
  }
  const auto& vmas = as.vmas();
  auto it = vmas.upper_bound(lo);
  if (it != vmas.begin()) {
    auto prev = std::prev(it);
    if (prev->second.Overlaps(lo, hi)) {
      return true;
    }
  }
  return it != vmas.end() && it->second.Overlaps(lo, hi);
}

void ZapRange(AddressSpace& as, Vaddr start, Vaddr end) {
  FrameAllocator& allocator = as.allocator();
  Walker& walker = as.walker();
  start = PageAlignDown(start);
  end = PageAlignUp(end);

  Vaddr chunk_base = start & ~(kPteTableSpan - 1);
  for (; chunk_base < end; chunk_base += kPteTableSpan) {
    Vaddr chunk_end = chunk_base + kPteTableSpan;
    Vaddr lo = std::max(chunk_base, start);
    Vaddr hi = std::min(chunk_end, end);

    // §4 extension: a shared PMD table (kOnDemandHuge) covers this chunk's whole 1 GiB PUD
    // span. Either drop the span's reference wholesale (nothing else lives there) or
    // dedicate it before mutating anything below.
    uint64_t* pud_slot = walker.FindEntry(as.pgd(), chunk_base, PtLevel::kPud);
    if (pud_slot != nullptr) {
      Pte pud = LoadEntry(pud_slot);
      if (pud.IsPresent() &&
          allocator.GetMeta(pud.frame()).pt_share_count.load(std::memory_order_acquire) >
              1) {
        Vaddr pud_base = EntryBase(chunk_base, PtLevel::kPud);
        Vaddr pud_end = pud_base + EntrySpan(PtLevel::kPud);
        Vaddr covered_lo = std::max(pud_base, start);
        Vaddr covered_hi = std::min(pud_end, end);
        bool remainder_live = RangeHasLiveVma(as, pud_base, covered_lo) ||
                              RangeHasLiveVma(as, covered_hi, pud_end);
        if (!remainder_live) {
          // Gen-before-free: unlink, bump the shard generations, THEN drop the references
          // (so a lock-free reader's pin-then-generation-recheck can never keep a frame
          // that this drop frees).
          StoreEntry(pud_slot, Pte());
          as.tlb().InvalidateRange(pud_base, pud_end);
          DropPmdTableReference(allocator, as.swap_space(), as.rmap(), pud.frame());
          // Skip the rest of this PUD span (the loop increment adds one chunk).
          chunk_base = std::min(pud_end, end) - kPteTableSpan;
          continue;
        }
        DedicatePmdTable(as, pud_base, pud_slot);
      }
    }

    uint64_t* pmd_slot = walker.FindEntry(as.pgd(), chunk_base, PtLevel::kPmd);
    if (pmd_slot == nullptr) {
      continue;
    }
    Pte pmd = LoadEntry(pmd_slot);
    if (!pmd.IsPresent()) {
      continue;
    }

    if (pmd.IsHuge()) {
      // Huge mappings are unmapped at 2 MiB granularity (enforced by AddressSpace::Unmap).
      ODF_CHECK(lo == chunk_base && hi == chunk_end)
          << "partial unmap of a huge mapping is not supported";
      if (as.rmap() != nullptr) {
        as.rmap()->Remove(pmd.frame(), pmd_slot, /*huge=*/true);
      }
      StoreEntry(pmd_slot, Pte());
      as.tlb().InvalidateRange(lo, hi);  // Gen-before-free.
      PutMappedPage(allocator, pmd, /*huge=*/true);
      continue;
    }

    FrameId table = pmd.frame();
    bool full_chunk = (lo == chunk_base && hi == chunk_end);
    uint32_t share =
        allocator.GetMeta(table).pt_share_count.load(std::memory_order_acquire);

    if (share > 1) {
      // §3.3: if no live VMA still needs entries in this 2 MiB span, just drop our
      // reference; otherwise COW the table and zap only our part of the private copy.
      bool remainder_live = !full_chunk && (RangeHasLiveVma(as, chunk_base, lo) ||
                                            RangeHasLiveVma(as, hi, chunk_end));
      if (!remainder_live) {
        StoreEntry(pmd_slot, Pte());
        as.tlb().InvalidateRange(chunk_base, chunk_end);  // Gen-before-free.
        DropPteTableReference(allocator, as.swap_space(), as.rmap(), table);
        continue;
      }
      table = DedicatePteTable(as, chunk_base, pmd_slot);
    }

    if (full_chunk) {
      StoreEntry(pmd_slot, Pte());
      as.tlb().InvalidateRange(chunk_base, chunk_end);  // Gen-before-free.
      // Last ref: puts every mapped page and swap slot.
      DropPteTableReference(allocator, as.swap_space(), as.rmap(), table);
      continue;
    }

    uint64_t* entries = allocator.TableEntries(table);
    std::array<FrameId, kEntriesPerTable> heads;
    size_t mapped = 0;
    for (Vaddr va = lo; va < hi; va += kPageSize) {
      uint64_t* slot = &entries[TableIndex(va, PtLevel::kPte)];
      Pte entry = LoadEntry(slot);
      if (entry.IsPresent()) {
        FrameId frame = entry.frame();
        if (as.rmap() != nullptr) {
          as.rmap()->Remove(frame, slot);
        }
        heads[mapped++] = ResolveCompoundHead(allocator.GetMeta(frame), frame);
        StoreEntry(slot, Pte());
      } else if (entry.IsSwap()) {
        ODF_CHECK(as.swap_space() != nullptr);
        as.swap_space()->DecRef(entry.swap_slot());
        StoreEntry(slot, Pte());
      } else if (entry.IsHwPoison()) {
        // Unmapping a poisoned VA clears the tombstone; the frame itself stays quarantined
        // (the allocator holds the poison state, not the entry).
        StoreEntry(slot, Pte());
      }
    }
    as.tlb().InvalidateRange(lo, hi);  // Gen-before-free: entries above are already clear.
    allocator.DecRefBatch(std::span<const FrameId>(heads.data(), mapped));
    if (TableIsEmpty(allocator, table)) {
      StoreEntry(pmd_slot, Pte());
      DropPteTableReference(allocator, as.swap_space(), as.rmap(), table);
    }
  }
  // Epoch-deferred table frees settle before the zap returns: callers (and their leak
  // checks) rely on the allocator accounting being exact once the range op completes.
  PtEpoch::Global().Drain();
}

void MovePageRange(AddressSpace& as, Vaddr old_start, Vaddr new_start, uint64_t length) {
  FrameAllocator& allocator = as.allocator();
  Walker& walker = as.walker();
  ODF_CHECK(IsPageAligned(old_start) && IsPageAligned(new_start) && IsPageAligned(length));

  // Dedicate any shared table touched by the source range first (§3.3: remap performs COW on
  // shared page tables), so moving entries out cannot corrupt other sharers. Shared PMD
  // tables (§4 extension) must become exclusive before the PTE tables below them.
  for (Vaddr chunk = old_start & ~(kPteTableSpan - 1); chunk < old_start + length;
       chunk += kPteTableSpan) {
    EnsureExclusivePmdPath(as, chunk);
    uint64_t* pmd_slot = walker.FindEntry(as.pgd(), chunk, PtLevel::kPmd);
    if (pmd_slot == nullptr) {
      continue;
    }
    Pte pmd = LoadEntry(pmd_slot);
    if (!pmd.IsPresent() || pmd.IsHuge()) {
      continue;
    }
    if (allocator.GetMeta(pmd.frame()).pt_share_count.load(std::memory_order_acquire) > 1) {
      DedicatePteTable(as, chunk, pmd_slot);
    }
  }

  for (uint64_t offset = 0; offset < length; offset += kPageSize) {
    uint64_t* src_slot = walker.FindEntry(as.pgd(), old_start + offset, PtLevel::kPte);
    if (src_slot == nullptr) {
      continue;
    }
    Pte entry = LoadEntry(src_slot);
    if (entry.IsNone()) {
      continue;  // Neither present nor swapped: nothing to move.
    }
    Vaddr dest_va = new_start + offset;
    // The destination chunk's table could itself be shared (a neighbouring VMA forked
    // earlier maps the same 2 MiB span): dedicate before inserting.
    EnsureExclusivePmdPath(as, dest_va);
    uint64_t* dest_pmd = walker.EnsureEntry(as.pgd(), dest_va, PtLevel::kPmd);
    Pte dest_pmd_entry = LoadEntry(dest_pmd);
    if (dest_pmd_entry.IsPresent() && !dest_pmd_entry.IsHuge() &&
        allocator.GetMeta(dest_pmd_entry.frame())
                .pt_share_count.load(std::memory_order_acquire) > 1) {
      DedicatePteTable(as, dest_va & ~(kPteTableSpan - 1), dest_pmd);
    }
    uint64_t* dst_slot = walker.EnsureEntry(as.pgd(), dest_va, PtLevel::kPte);
    ODF_DCHECK(!LoadEntry(dst_slot).IsPresent()) << "mremap destination already mapped";
    StoreEntry(dst_slot, entry);
    StoreEntry(src_slot, Pte());
    if (entry.IsPresent() && as.rmap() != nullptr) {
      as.rmap()->Move(entry.frame(), src_slot, dst_slot);
    }
  }
  as.tlb().InvalidateRange(old_start, old_start + length);
  as.tlb().InvalidateRange(new_start, new_start + length);
}

void ProtectRange(AddressSpace& as, Vaddr start, Vaddr end, uint32_t prot) {
  if ((prot & kProtWrite) != 0) {
    // Permission widening takes effect lazily through the fault handler.
    return;
  }
  FrameAllocator& allocator = as.allocator();
  Walker& walker = as.walker();
  for (Vaddr chunk = start & ~(kPteTableSpan - 1); chunk < end; chunk += kPteTableSpan) {
    uint64_t* pud_slot = walker.FindEntry(as.pgd(), chunk, PtLevel::kPud);
    if (pud_slot != nullptr) {
      Pte pud = LoadEntry(pud_slot);
      if (pud.IsPresent() && allocator.GetMeta(pud.frame())
                                     .pt_share_count.load(std::memory_order_acquire) > 1) {
        // A shared PMD table is already write-protected at the PUD level; the fault handler
        // consults the VMA before any COW, so the downgrade needs no structural change.
        continue;
      }
    }
    uint64_t* pmd_slot = walker.FindEntry(as.pgd(), chunk, PtLevel::kPmd);
    if (pmd_slot == nullptr) {
      continue;
    }
    Pte pmd = LoadEntry(pmd_slot);
    if (!pmd.IsPresent()) {
      continue;
    }
    if (pmd.IsHuge()) {
      StoreEntry(pmd_slot, pmd.WithoutFlag(kPteWritable));
      continue;
    }
    FrameId table = pmd.frame();
    if (allocator.GetMeta(table).pt_share_count.load(std::memory_order_acquire) > 1) {
      // Already write-protected at the PMD level; the fault handler consults the VMA before
      // any COW, so a write into the downgraded range SEGVs without table changes.
      continue;
    }
    uint64_t* entries = allocator.TableEntries(table);
    Vaddr lo = std::max(chunk, start);
    Vaddr hi = std::min(chunk + kPteTableSpan, end);
    for (Vaddr va = lo; va < hi; va += kPageSize) {
      uint64_t* slot = &entries[TableIndex(va, PtLevel::kPte)];
      Pte entry = LoadEntry(slot);
      if (entry.IsPresent() && entry.IsWritable()) {
        StoreEntry(slot, entry.WithoutFlag(kPteWritable));
      }
    }
  }
  as.tlb().InvalidateRange(start, end);
}

namespace {

void FreeTableRecursive(FrameAllocator& allocator, SwapSpace* swap,
                        reclaim::RmapRegistry* rmap, FrameId table, PtLevel level) {
  uint64_t* entries = allocator.TableEntries(table);
  for (uint64_t i = 0; i < kEntriesPerTable; ++i) {
    Pte entry = LoadEntry(&entries[i]);
    if (!entry.IsPresent()) {
      continue;
    }
    if (level == PtLevel::kPud) {
      // PMD tables may be shared (§4 extension) or hold leftover leaf state; dropping the
      // reference handles both (the last dropper releases huge pages and PTE tables).
      DropPmdTableReference(allocator, swap, rmap, entry.frame());
      StoreEntry(&entries[i], Pte());
      continue;
    }
    FreeTableRecursive(allocator, swap, rmap, entry.frame(), NextLevel(level));
    StoreEntry(&entries[i], Pte());
  }
  // Published (reachable from the live PGD until a moment ago), so a lock-free walker may
  // still hold a pointer into it: epoch-defer the free like every other table teardown.
  PtEpoch::Global().Retire(&allocator, table);
}

}  // namespace

void FreePageTables(AddressSpace& as) {
  FreeTableRecursive(as.allocator(), as.swap_space(), as.rmap(), as.pgd(), PtLevel::kPgd);
  // Leak checks (and standalone-allocator destruction) follow immediately; settle the
  // deferred frees now.
  PtEpoch::Global().Drain();
}

}  // namespace odf
