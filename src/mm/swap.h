// SwapSpace: the simulated swap device.
//
// The paper's robustness story (§4) relies on the kernel's usual low-memory machinery: when
// PTE tables (or data pages) cannot be allocated, pages are swapped out or the OOM killer
// runs. This module provides the swap half: reference-counted 4 KiB slots on a "device"
// outside simulated RAM (host memory — the analog of a disk), written by the reclaimer and
// read back by the swap-in fault path.
//
// Slot reference counting mirrors Linux's swap_map: classic fork copies a swap PTE and takes
// a slot reference; every swap-in or unmap drops one; the slot is recycled at zero. A slot's
// content is immutable while referenced, which is what makes post-fork COW of swapped pages
// trivially correct — each process faults in its own private copy.
#ifndef ODF_SRC_MM_SWAP_H_
#define ODF_SRC_MM_SWAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/phys/page_meta.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {

using SwapSlot = uint64_t;

// Returned by TryWriteOut when the device I/O "fails" (injected swap_out error).
inline constexpr SwapSlot kInvalidSwapSlot = ~SwapSlot{0};

struct SwapStats {
  uint64_t slots_in_use = 0;
  uint64_t total_slots = 0;      // High-water mark of device size.
  uint64_t writes = 0;           // Pages swapped out.
  uint64_t reads = 0;            // Pages swapped in.
  uint64_t io_errors = 0;        // Injected swap_out / swap_in failures.
};

class SwapSpace {
 public:
  SwapSpace() = default;
  SwapSpace(const SwapSpace&) = delete;
  SwapSpace& operator=(const SwapSpace&) = delete;

  // Allocates a slot with refcount 1 and stores the page content. `src` may be null for a
  // logically-zero page (the slot then reads back as zeros without storing a buffer).
  // NOFAIL: never consults fault injection.
  SwapSlot WriteOut(const std::byte* src);

  // Fallible WriteOut: kInvalidSwapSlot when fault injection (site swap_out) fails the
  // device write. Callers keep the page resident and retry later (the reclaimer skips it).
  [[nodiscard]] SwapSlot TryWriteOut(const std::byte* src);

  // Copies the slot's content into `dst` (exactly kPageSize bytes). NOFAIL.
  void ReadIn(SwapSlot slot, std::byte* dst);

  // Fallible ReadIn: false when fault injection (site swap_in) fails the device read; `dst`
  // is untouched and the slot keeps its reference so a later retry can succeed.
  [[nodiscard]] bool TryReadIn(SwapSlot slot, std::byte* dst);

  // Slot reference management (fork copies a swap entry -> IncRef; unmap/swap-in -> DecRef).
  void IncRef(SwapSlot slot);
  void DecRef(SwapSlot slot);

  uint32_t RefCount(SwapSlot slot) const;
  SwapStats Stats() const;
  bool AllFree() const;

  // Content view for the replay digest (src/replay): the slot's buffer (kPageSize bytes),
  // or nullptr when its logical content is all-zero. No device-read accounting. The pointer
  // stays valid while the slot keeps a reference; callers run quiescently.
  const std::byte* PeekSlot(SwapSlot slot) const;

 private:
  struct Slot {
    std::unique_ptr<std::byte[]> data;  // Null == all-zero content.
    uint32_t refs = 0;
  };

  mutable util::Mutex mutex_;
  std::vector<Slot> slots_ ODF_GUARDED_BY(mutex_);
  std::vector<SwapSlot> free_slots_ ODF_GUARDED_BY(mutex_);
  SwapStats stats_ ODF_GUARDED_BY(mutex_);
};

}  // namespace odf

#endif  // ODF_SRC_MM_SWAP_H_
