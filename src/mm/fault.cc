#include "src/mm/fault.h"

#include <cstring>

#include "src/mm/range_ops.h"
#include "src/reclaim/lru.h"
#include "src/reclaim/rmap.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

namespace {

// Fault-latency histograms (registered once; references stay valid across resets).
LatencyHistogram& DemandZeroHistogram() {
  static LatencyHistogram& h =
      MetricsRegistry::Global().RegisterHistogram("fault_demand_zero_ns");
  return h;
}
LatencyHistogram& CowPageHistogram() {
  static LatencyHistogram& h = MetricsRegistry::Global().RegisterHistogram("fault_cow_page_ns");
  return h;
}

// Records the kOom verdict: the address space is consistent, the access simply could not be
// served. Callers (Process::AccessMemory, the torture harness) may retry after freeing
// memory or disarming injection.
FaultResult FaultOom(AddressSpace& as, Vaddr va) {
  ++as.stats().oom_faults;
  CountVm(VmCounter::k_pgfault_oom);
  ODF_TRACE(fault_oom, as.owner_pid(), va);
  return FaultResult::kOom;
}

// Installs the demand-paged mapping for a not-present PTE (anonymous zero page or page-cache
// page). The caller guarantees `slot` lives in a table exclusive to this address space
// (shared tables are dedicated before any install — see HandleFault). Returns false when
// the anonymous frame cannot be allocated (nothing installed). The page-cache path performs
// no frame allocation of its own and cannot fail.
bool DemandInstall(AddressSpace& as, VmArea& vma, Vaddr va, uint64_t* slot) {
  FrameAllocator& allocator = as.allocator();
  // Poison markers are filtered by every caller (HandleFault, PopulateRange): installing
  // over one would resurrect a VA whose data died in a memory error.
  ODF_DCHECK(!LoadEntry(slot).IsHwPoison());
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  uint64_t flags = kPtePresent | kPteUser | kPteAccessed;
  FrameId frame;
  if (vma.kind == VmaKind::kAnonPrivate) {
    frame = allocator.TryAllocate(kPageFlagAnon | kPageFlagZeroFill);
    if (frame == kInvalidFrame) {
      return false;
    }
    if (vma.IsWritable()) {
      flags |= kPteWritable;
    }
    ++as.stats().demand_zero_faults;
    CountVm(VmCounter::k_pgfault_demand_zero);
    if (tracing) {
      uint64_t ns = trace::NowNanos() - t0;
      ODF_TRACE(fault_demand_zero, as.owner_pid(), va, ns);
      DemandZeroHistogram().RecordNanos(ns);
    }
  } else {
    FrameId cache_frame = vma.file->GetPage(vma.FilePageIndex(va));
    allocator.IncRef(cache_frame);
    frame = cache_frame;
    if (vma.kind == VmaKind::kFileShared && vma.IsWritable()) {
      flags |= kPteWritable;
    }
    // Private file pages stay read-only: the first write COWs them off the page cache.
    ++as.stats().file_faults;
    CountVm(VmCounter::k_pgfault_file);
    ODF_TRACE(fault_file, as.owner_pid(), va);
  }
  StoreEntry(slot, Pte::Make(frame, flags));
  if (as.rmap() != nullptr) {
    as.rmap()->Add(frame, slot);
  }
  return true;
}

// Write to a present but non-writable 4 KiB PTE: either re-enable the write bit (sole owner
// or shared file mapping) or copy the page (COW). Returns false when the copy frame cannot
// be allocated (the entry is left write-protected and intact).
bool DataCowFault(AddressSpace& as, VmArea& vma, Vaddr va, uint64_t* slot) {
  FrameAllocator& allocator = as.allocator();
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  Pte entry = LoadEntry(slot);
  ODF_DCHECK(entry.IsPresent() && !entry.IsWritable());
  FrameId frame = entry.frame();
  PageMeta& meta = allocator.GetMeta(frame);

  if (vma.kind == VmaKind::kFileShared) {
    // Shared mappings never COW; the write permission was only missing transiently (e.g.
    // after a PTE-table dedication write-protected every entry).
    StoreEntry(slot, entry.WithFlag(kPteWritable | kPteDirty));
    as.tlb().InvalidatePage(va);
    ++as.stats().cow_reuse_faults;
    CountVm(VmCounter::k_pgfault_cow_reuse);
    ODF_TRACE(fault_cow_reuse, as.owner_pid(), va);
    return true;
  }

  uint32_t refs = meta.refcount.load(std::memory_order_acquire);
  if (refs == 1) {
    // Sole owner — reuse the page in place. (A frame still owned by the page cache always
    // has the cache's reference, so refs == 1 implies it is exclusively ours.)
    StoreEntry(slot, entry.WithFlag(kPteWritable | kPteDirty));
    as.tlb().InvalidatePage(va);
    ++as.stats().cow_reuse_faults;
    CountVm(VmCounter::k_pgfault_cow_reuse);
    ODF_TRACE(fault_cow_reuse, as.owner_pid(), va);
    return true;
  }

  FrameId copy = allocator.TryAllocate(kPageFlagAnon);
  if (copy == kInvalidFrame) {
    return false;
  }
  if (LoadEntry(slot).raw() != entry.raw()) {
    // TryAllocate under a frame limit runs direct reclaim inline, and reclaim may have
    // evicted this very page through the rmap while we held the pre-allocation snapshot
    // (frame id, refcount, rmap registration — all stale now). Real kernels hold the page
    // locked across the copy; we drop the unused frame and re-translate instead: a
    // swapped-out page takes the swap-in path on the next round of the fault loop.
    allocator.DecRef(copy);
    return true;
  }
  const std::byte* src = allocator.PeekData(frame);
  if (src != nullptr) {
    std::byte* dst = allocator.MaterializeData(copy, /*zero=*/false);
    std::memcpy(dst, src, kPageSize);
  }
  // else: the source was never materialised (logical zero) — the copy stays lazy-zero.
  if (as.rmap() != nullptr) {
    as.rmap()->Remove(frame, slot);
  }
  StoreEntry(slot, Pte::Make(copy, kPtePresent | kPteWritable | kPteUser | kPteAccessed |
                                       kPteDirty));
  if (as.rmap() != nullptr) {
    as.rmap()->Add(copy, slot);
  }
  as.tlb().InvalidatePage(va);  // Gen-before-free: bump the shard before the old frame drops.
  PutMappedPage(allocator, entry, /*huge=*/false);
  ++as.stats().cow_page_faults;
  CountVm(VmCounter::k_pgfault_cow_page);
  if (tracing) {
    uint64_t ns = trace::NowNanos() - t0;
    ODF_TRACE(fault_cow_page, as.owner_pid(), va, ns);
    CowPageHistogram().RecordNanos(ns);
  }
  return true;
}

// Demand-populate a huge (2 MiB) mapping at the PMD level. Returns false when the compound
// cannot be allocated; the caller degrades to 4 KiB demand paging for this chunk.
bool HugeDemandInstall(AddressSpace& as, VmArea& vma, Vaddr chunk_base, uint64_t* pmd_slot) {
  FrameAllocator& allocator = as.allocator();
  ODF_DCHECK(vma.kind == VmaKind::kAnonPrivate) << "huge mappings are anonymous-only";
  FrameId head = allocator.TryAllocateCompound(kPageFlagAnon | kPageFlagZeroFill);
  if (head == kInvalidFrame) {
    return false;
  }
  uint64_t flags = kPtePresent | kPteUser | kPteAccessed | kPteHuge;
  if (vma.IsWritable()) {
    flags |= kPteWritable;
  }
  StoreEntry(pmd_slot, Pte::Make(head, flags));
  if (as.rmap() != nullptr) {
    as.rmap()->Add(head, pmd_slot, /*huge=*/true);
  }
  ++as.stats().demand_zero_faults;
  CountVm(VmCounter::k_pgfault_demand_zero);
  ODF_TRACE(fault_demand_zero, as.owner_pid(), chunk_base, /*ns=*/0, /*huge=*/1);
  return true;
}

}  // namespace

// Fallback when a huge COW cannot allocate a 2 MiB compound: split the mapping into a PTE
// table whose 512 entries point at the shared compound's tail frames, write-protected, so
// each 4 KiB page COWs individually (one frame at a time instead of 512 at once). This is
// the memory-pressure half of the paper's robustness story (§4): a fork-then-write workload
// keeps making progress page by page even when no contiguous 2 MiB run can be carved.
// Exported (fault.h) because memory-failure handling reuses it: offlining one 4 KiB subpage
// of a huge mapping splits the mapping first, then poisons only the dead tail.
bool SplitHugeMapping(AddressSpace& as, Vaddr chunk_base, uint64_t* pmd_slot) {
  FrameAllocator& allocator = as.allocator();
  Pte entry = LoadEntry(pmd_slot);
  ODF_DCHECK(entry.IsPresent() && entry.IsHuge());
  FrameId head = entry.frame();

  FrameId table = TryAllocPageTable(allocator);
  if (table == kInvalidFrame) {
    return false;
  }
  if (LoadEntry(pmd_slot).raw() != entry.raw()) {
    // Direct reclaim inside the table allocation changed the mapping under us (see
    // DataCowFault); drop the spare table and let the fault loop re-translate.
    allocator.DecRef(table);
    return true;
  }
  constexpr FrameId kCompoundFrames = 1u << kHugePageOrder;
  // Each 4 KiB entry takes its own reference on the compound (tails resolve to the head):
  // +512 for the new entries, -1 below for the huge PMD entry being replaced.
  allocator.AddRefs(head, kCompoundFrames);
  uint64_t* entries = allocator.TableEntries(table);
  uint64_t flags = kPtePresent | kPteUser | (entry.flags() & kPteAccessed);
  for (FrameId i = 0; i < kCompoundFrames; ++i) {
    StoreEntry(&entries[i], Pte::Make(head + i, flags));
    if (as.rmap() != nullptr) {
      // Tails register under head+i — the frame id exactly as the new PTE stores it.
      as.rmap()->Add(head + i, &entries[i]);
    }
  }
  if (as.rmap() != nullptr) {
    as.rmap()->Remove(head, pmd_slot, /*huge=*/true);
  }
  StoreEntry(pmd_slot, Pte::Make(table, kPtePresent | kPteWritable | kPteUser |
                                            (entry.flags() & kPteAccessed)));
  as.tlb().InvalidateRange(chunk_base, chunk_base + kHugePageSize);  // Gen-before-free.
  PutMappedPage(allocator, entry, /*huge=*/true);
  CountVm(VmCounter::k_fork_degrade_classic);
  ODF_TRACE(fork_degrade_classic, as.owner_pid(), chunk_base,
            static_cast<uint64_t>(DegradeFlavor::kHugeCowSplit));
  return true;
}

namespace {

// Write to a present but non-writable huge PMD entry: COW the whole 2 MiB page. This is the
// 512x fault-amplification cost the paper attributes to huge pages (§2.3, Table 1).
// When the compound copy cannot be allocated, degrades by splitting the mapping into 4 KiB
// COW entries (SplitHugeMapping); returns false only when even the split's one-table
// allocation fails.
bool HugeCowFault(AddressSpace& as, Vaddr chunk_base, uint64_t* pmd_slot) {
  FrameAllocator& allocator = as.allocator();
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  Pte entry = LoadEntry(pmd_slot);
  FrameId head = entry.frame();
  PageMeta& meta = allocator.GetMeta(head);

  if (meta.refcount.load(std::memory_order_acquire) == 1) {
    StoreEntry(pmd_slot, entry.WithFlag(kPteWritable | kPteDirty));
    as.tlb().InvalidateRange(chunk_base, chunk_base + kHugePageSize);
    ++as.stats().cow_reuse_faults;
    CountVm(VmCounter::k_pgfault_cow_reuse);
    ODF_TRACE(fault_cow_reuse, as.owner_pid(), chunk_base, /*ns=*/0, /*huge=*/1);
    return true;
  }

  FrameId copy = allocator.TryAllocateCompound(kPageFlagAnon);
  if (copy == kInvalidFrame) {
    return SplitHugeMapping(as, chunk_base, pmd_slot);
  }
  if (LoadEntry(pmd_slot).raw() != entry.raw()) {
    // Direct reclaim inside the compound allocation changed the mapping under us (see
    // DataCowFault); drop the unused compound and let the fault loop re-translate.
    allocator.DecRef(copy);
    return true;
  }
  const std::byte* src = allocator.PeekData(head);
  if (src != nullptr) {
    std::byte* dst = allocator.MaterializeData(copy, /*zero=*/false);
    std::memcpy(dst, src, kHugePageSize);
  }
  if (as.rmap() != nullptr) {
    as.rmap()->Remove(head, pmd_slot, /*huge=*/true);
  }
  StoreEntry(pmd_slot, Pte::Make(copy, kPtePresent | kPteWritable | kPteUser | kPteAccessed |
                                           kPteDirty | kPteHuge));
  if (as.rmap() != nullptr) {
    as.rmap()->Add(copy, pmd_slot, /*huge=*/true);
  }
  as.tlb().InvalidateRange(chunk_base, chunk_base + kHugePageSize);  // Gen-before-free.
  PutMappedPage(allocator, entry, /*huge=*/true);
  ++as.stats().cow_huge_faults;
  CountVm(VmCounter::k_pgfault_cow_huge);
  if (tracing) {
    ODF_TRACE(fault_cow_huge, as.owner_pid(), chunk_base, trace::NowNanos() - t0);
  }
  return true;
}

}  // namespace

FaultResult HandleFault(AddressSpace& as, Vaddr va, AccessType access, FrameId* frame_out) {
  Walker& walker = as.walker();
  // Each iteration removes one fault cause; the chain is bounded (table creation -> shared
  // table COW -> demand install -> data COW -> success), with slack for the degrade paths
  // (a huge split adds one round). A chain that fails to converge is reported as
  // kRetryExhausted rather than aborting the machine.
  constexpr int kFaultRetryBudget = 16;
  for (int attempt = 0; attempt < kFaultRetryBudget; ++attempt) {
    Translation t = walker.Translate(as.pgd(), va, access);
    if (t.status == TranslateStatus::kOk) {
      bool writable_cached = access == AccessType::kWrite;
      as.tlb().Insert(va, t.frame, writable_cached);
      if (frame_out != nullptr) {
        *frame_out = t.frame;
      }
      return FaultResult::kHandled;
    }

    VmArea* vma = as.FindVma(va);
    if (vma == nullptr) {
      ++as.stats().segv_faults;
      CountVm(VmCounter::k_pgfault_segv);
      ODF_TRACE(fault_segv, as.owner_pid(), va, /*prot=*/0);
      return FaultResult::kSegvUnmapped;
    }
    uint32_t needed = access == AccessType::kWrite ? kProtWrite : kProtRead;
    if ((vma->prot & needed) == 0) {
      ++as.stats().segv_faults;
      CountVm(VmCounter::k_pgfault_segv);
      ODF_TRACE(fault_segv, as.owner_pid(), va, /*prot=*/1);
      return FaultResult::kSegvProt;
    }

    if (t.status == TranslateStatus::kNotWritable) {
      if (t.fault_level == PtLevel::kPud) {
        // §4 extension: the PUD write-protection marks a shared PMD table (kOnDemandHuge).
        uint64_t* pud_slot = walker.FindEntry(as.pgd(), va, PtLevel::kPud);
        ODF_CHECK(pud_slot != nullptr);
        if (DedicatePmdTable(as, EntryBase(va, PtLevel::kPud), pud_slot,
                             AllocPolicy::kTry) == kInvalidFrame) {
          return FaultOom(as, va);
        }
        continue;
      }
      if (t.fault_level == PtLevel::kPmd) {
        uint64_t* pmd_slot = walker.FindEntry(as.pgd(), va, PtLevel::kPmd);
        ODF_CHECK(pmd_slot != nullptr);
        Pte pmd = LoadEntry(pmd_slot);
        Vaddr chunk_base = EntryBase(va, PtLevel::kPmd);
        if (pmd.IsHuge()) {
          if (!HugeCowFault(as, chunk_base, pmd_slot)) {
            return FaultOom(as, va);
          }
        } else {
          // The on-demand-fork path: the PMD write-protection marks a shared PTE table.
          if (DedicatePteTable(as, chunk_base, pmd_slot, AllocPolicy::kTry) ==
              kInvalidFrame) {
            return FaultOom(as, va);
          }
        }
        continue;
      }
      ODF_CHECK(t.fault_level == PtLevel::kPte)
          << "write-protection fault at unexpected level "
          << static_cast<int>(t.fault_level);
      uint64_t* slot = walker.FindEntry(as.pgd(), va, PtLevel::kPte);
      ODF_CHECK(slot != nullptr);
      if (!DataCowFault(as, *vma, va, slot)) {
        return FaultOom(as, va);
      }
      continue;
    }

    // Not present somewhere along the walk. Installing an entry MUTATES the table it lands
    // in, so any shared table on the path must be dedicated first: sharers' VMA layouts can
    // diverge after fork, and an entry installed into a shared table would silently appear
    // in every sharer's address space. (ODF's "fast read" applies to PRESENT pages only.)
    if (!EnsureExclusivePmdPath(as, va, AllocPolicy::kTry)) {
      return FaultOom(as, va);
    }
    if (vma->huge) {
      uint64_t* pmd_slot = walker.TryEnsureEntry(as.pgd(), va, PtLevel::kPmd);
      if (pmd_slot == nullptr) {
        return FaultOom(as, va);
      }
      Pte pmd = LoadEntry(pmd_slot);
      if (pmd.IsPresent() && pmd.IsHuge()) {
        // Present huge entry but the walk still faulted: the write-protection branch above
        // resolves it next round.
        continue;
      }
      if (!pmd.IsPresent()) {
        if (HugeDemandInstall(as, *vma, EntryBase(va, PtLevel::kPmd), pmd_slot)) {
          continue;
        }
        // No 2 MiB compound available: degrade this chunk to 4 KiB demand paging (the
        // split-mapping analog of the kernel falling back from THP to base pages).
        CountVm(VmCounter::k_fork_degrade_classic);
        ODF_TRACE(fork_degrade_classic, as.owner_pid(), va,
                  static_cast<uint64_t>(DegradeFlavor::kHugeDemand4k));
      }
      // A present non-huge PMD under a huge VMA is a previously split/degraded chunk:
      // fall through to the 4 KiB path.
    }
    uint64_t* pmd_probe = walker.FindEntry(as.pgd(), va, PtLevel::kPmd);
    if (pmd_probe != nullptr) {
      Pte pmd_entry = LoadEntry(pmd_probe);
      if (pmd_entry.IsPresent() && !pmd_entry.IsHuge() &&
          as.allocator().GetMeta(pmd_entry.frame())
                  .pt_share_count.load(std::memory_order_acquire) > 1) {
        if (DedicatePteTable(as, EntryBase(va, PtLevel::kPmd), pmd_probe,
                             AllocPolicy::kTry) == kInvalidFrame) {
          return FaultOom(as, va);
        }
      }
    }
    uint64_t* slot = walker.TryEnsureEntry(as.pgd(), va, PtLevel::kPte);
    if (slot == nullptr) {
      return FaultOom(as, va);
    }
    Pte entry = LoadEntry(slot);
    if (entry.IsHwPoison()) {
      // The page at this VA was lost to a memory error: the marker is sticky (no retry can
      // bring the bytes back) and the verdict is delivered only to processes that actually
      // touch the dead VA — everyone else keeps running (docs/memory-failure.md).
      CountVm(VmCounter::k_mf_sigbus);
      ODF_TRACE(mf_sigbus, as.owner_pid(), va, entry.frame());
      return FaultResult::kHwPoison;
    }
    if (entry.IsSwap()) {
      // Swap-in: bring the page back from the swap device into a fresh private frame.
      SwapSpace* swap = as.swap_space();
      ODF_CHECK(swap != nullptr);
      FrameId frame = as.allocator().TryAllocate(kPageFlagAnon);
      if (frame == kInvalidFrame) {
        return FaultOom(as, va);
      }
      std::byte* dst = as.allocator().MaterializeData(frame, /*zero=*/false);
      if (!swap->TryReadIn(entry.swap_slot(), dst)) {
        // Device read failed: drop only the fresh frame. The swap entry and the slot's
        // reference survive untouched, so a retry after the transient error succeeds.
        as.allocator().DecRef(frame);
        ++as.stats().swap_io_faults;
        return FaultResult::kSwapIoError;
      }
      swap->DecRef(entry.swap_slot());
      uint64_t flags = kPtePresent | kPteUser | kPteAccessed;
      if (vma->IsWritable()) {
        flags |= kPteWritable;
      }
      StoreEntry(slot, Pte::Make(frame, flags));
      if (as.rmap() != nullptr) {
        as.rmap()->Add(frame, slot);
        reclaim::PageLru* lru = as.rmap()->lru();
        if (lru != nullptr && lru->NoteRefault(entry.swap_slot())) {
          // Workingset refault: the page was evicted too recently — start it on the
          // active list instead of making it walk up from inactive again.
          lru->Activate(frame);
        }
      }
      ++as.stats().swap_in_faults;
      CountVm(VmCounter::k_pgfault_swap_in);
      ODF_TRACE(fault_swap_in, as.owner_pid(), va, entry.swap_slot());
      continue;
    }
    if (!entry.IsPresent()) {
      if (!DemandInstall(as, *vma, va, slot)) {
        return FaultOom(as, va);
      }
    }
    // Present but blocked: loop back; the NotWritable branch will resolve it.
  }
  // The chain did not converge within the budget. This is a bug indicator, but aborting
  // would take the whole simulated machine down; report it as a typed, recoverable error.
  CountVm(VmCounter::k_pgfault_retry_exhausted);
  ODF_TRACE(fault_oom, as.owner_pid(), va, /*retry_exhausted=*/1);
  return FaultResult::kRetryExhausted;
}

}  // namespace odf
