#include "src/mm/fault.h"

#include <cstring>

#include "src/mm/range_ops.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

namespace {

// Fault-latency histograms (registered once; references stay valid across resets).
LatencyHistogram& DemandZeroHistogram() {
  static LatencyHistogram& h =
      MetricsRegistry::Global().RegisterHistogram("fault_demand_zero_ns");
  return h;
}
LatencyHistogram& CowPageHistogram() {
  static LatencyHistogram& h = MetricsRegistry::Global().RegisterHistogram("fault_cow_page_ns");
  return h;
}

// Installs the demand-paged mapping for a not-present PTE (anonymous zero page or page-cache
// page). The caller guarantees `slot` lives in a table exclusive to this address space
// (shared tables are dedicated before any install — see HandleFault).
void DemandInstall(AddressSpace& as, VmArea& vma, Vaddr va, uint64_t* slot) {
  FrameAllocator& allocator = as.allocator();
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  uint64_t flags = kPtePresent | kPteUser | kPteAccessed;
  FrameId frame;
  if (vma.kind == VmaKind::kAnonPrivate) {
    frame = allocator.Allocate(kPageFlagAnon | kPageFlagZeroFill);
    if (vma.IsWritable()) {
      flags |= kPteWritable;
    }
    ++as.stats().demand_zero_faults;
    CountVm(VmCounter::k_pgfault_demand_zero);
    if (tracing) {
      uint64_t ns = trace::NowNanos() - t0;
      ODF_TRACE(fault_demand_zero, as.owner_pid(), va, ns);
      DemandZeroHistogram().RecordNanos(ns);
    }
  } else {
    FrameId cache_frame = vma.file->GetPage(vma.FilePageIndex(va));
    allocator.IncRef(cache_frame);
    frame = cache_frame;
    if (vma.kind == VmaKind::kFileShared && vma.IsWritable()) {
      flags |= kPteWritable;
    }
    // Private file pages stay read-only: the first write COWs them off the page cache.
    ++as.stats().file_faults;
    CountVm(VmCounter::k_pgfault_file);
    ODF_TRACE(fault_file, as.owner_pid(), va);
  }
  StoreEntry(slot, Pte::Make(frame, flags));
}

// Write to a present but non-writable 4 KiB PTE: either re-enable the write bit (sole owner
// or shared file mapping) or copy the page (COW).
void DataCowFault(AddressSpace& as, VmArea& vma, Vaddr va, uint64_t* slot) {
  FrameAllocator& allocator = as.allocator();
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  Pte entry = LoadEntry(slot);
  ODF_DCHECK(entry.IsPresent() && !entry.IsWritable());
  FrameId frame = entry.frame();
  PageMeta& meta = allocator.GetMeta(frame);

  if (vma.kind == VmaKind::kFileShared) {
    // Shared mappings never COW; the write permission was only missing transiently (e.g.
    // after a PTE-table dedication write-protected every entry).
    StoreEntry(slot, entry.WithFlag(kPteWritable | kPteDirty));
    as.tlb().InvalidatePage(va);
    ++as.stats().cow_reuse_faults;
    CountVm(VmCounter::k_pgfault_cow_reuse);
    ODF_TRACE(fault_cow_reuse, as.owner_pid(), va);
    return;
  }

  uint32_t refs = meta.refcount.load(std::memory_order_acquire);
  if (refs == 1) {
    // Sole owner — reuse the page in place. (A frame still owned by the page cache always
    // has the cache's reference, so refs == 1 implies it is exclusively ours.)
    StoreEntry(slot, entry.WithFlag(kPteWritable | kPteDirty));
    as.tlb().InvalidatePage(va);
    ++as.stats().cow_reuse_faults;
    CountVm(VmCounter::k_pgfault_cow_reuse);
    ODF_TRACE(fault_cow_reuse, as.owner_pid(), va);
    return;
  }

  FrameId copy = allocator.Allocate(kPageFlagAnon);
  const std::byte* src = allocator.PeekData(frame);
  if (src != nullptr) {
    std::byte* dst = allocator.MaterializeData(copy, /*zero=*/false);
    std::memcpy(dst, src, kPageSize);
  }
  // else: the source was never materialised (logical zero) — the copy stays lazy-zero.
  StoreEntry(slot, Pte::Make(copy, kPtePresent | kPteWritable | kPteUser | kPteAccessed |
                                       kPteDirty));
  PutMappedPage(allocator, entry, /*huge=*/false);
  as.tlb().InvalidatePage(va);
  ++as.stats().cow_page_faults;
  CountVm(VmCounter::k_pgfault_cow_page);
  if (tracing) {
    uint64_t ns = trace::NowNanos() - t0;
    ODF_TRACE(fault_cow_page, as.owner_pid(), va, ns);
    CowPageHistogram().RecordNanos(ns);
  }
}

// Demand-populate a huge (2 MiB) mapping at the PMD level.
void HugeDemandInstall(AddressSpace& as, VmArea& vma, Vaddr chunk_base, uint64_t* pmd_slot) {
  FrameAllocator& allocator = as.allocator();
  ODF_DCHECK(vma.kind == VmaKind::kAnonPrivate) << "huge mappings are anonymous-only";
  FrameId head = allocator.AllocateCompound(kPageFlagAnon | kPageFlagZeroFill);
  uint64_t flags = kPtePresent | kPteUser | kPteAccessed | kPteHuge;
  if (vma.IsWritable()) {
    flags |= kPteWritable;
  }
  StoreEntry(pmd_slot, Pte::Make(head, flags));
  ++as.stats().demand_zero_faults;
  CountVm(VmCounter::k_pgfault_demand_zero);
  ODF_TRACE(fault_demand_zero, as.owner_pid(), chunk_base, /*ns=*/0, /*huge=*/1);
}

// Write to a present but non-writable huge PMD entry: COW the whole 2 MiB page. This is the
// 512x fault-amplification cost the paper attributes to huge pages (§2.3, Table 1).
void HugeCowFault(AddressSpace& as, Vaddr chunk_base, uint64_t* pmd_slot) {
  FrameAllocator& allocator = as.allocator();
  const bool tracing = trace::Enabled();
  const uint64_t t0 = tracing ? trace::NowNanos() : 0;
  Pte entry = LoadEntry(pmd_slot);
  FrameId head = entry.frame();
  PageMeta& meta = allocator.GetMeta(head);

  if (meta.refcount.load(std::memory_order_acquire) == 1) {
    StoreEntry(pmd_slot, entry.WithFlag(kPteWritable | kPteDirty));
    as.tlb().InvalidateRange(chunk_base, chunk_base + kHugePageSize);
    ++as.stats().cow_reuse_faults;
    CountVm(VmCounter::k_pgfault_cow_reuse);
    ODF_TRACE(fault_cow_reuse, as.owner_pid(), chunk_base, /*ns=*/0, /*huge=*/1);
    return;
  }

  FrameId copy = allocator.AllocateCompound(kPageFlagAnon);
  const std::byte* src = allocator.PeekData(head);
  if (src != nullptr) {
    std::byte* dst = allocator.MaterializeData(copy, /*zero=*/false);
    std::memcpy(dst, src, kHugePageSize);
  }
  StoreEntry(pmd_slot, Pte::Make(copy, kPtePresent | kPteWritable | kPteUser | kPteAccessed |
                                           kPteDirty | kPteHuge));
  PutMappedPage(allocator, entry, /*huge=*/true);
  as.tlb().InvalidateRange(chunk_base, chunk_base + kHugePageSize);
  ++as.stats().cow_huge_faults;
  CountVm(VmCounter::k_pgfault_cow_huge);
  if (tracing) {
    ODF_TRACE(fault_cow_huge, as.owner_pid(), chunk_base, trace::NowNanos() - t0);
  }
}

}  // namespace

FaultResult HandleFault(AddressSpace& as, Vaddr va, AccessType access, FrameId* frame_out) {
  Walker& walker = as.walker();
  // Each iteration removes one fault cause; the chain is bounded (table creation -> shared
  // table COW -> demand install -> data COW -> success).
  for (int attempt = 0; attempt < 8; ++attempt) {
    Translation t = walker.Translate(as.pgd(), va, access);
    if (t.status == TranslateStatus::kOk) {
      bool writable_cached = access == AccessType::kWrite;
      as.tlb().Insert(va, t.frame, writable_cached);
      if (frame_out != nullptr) {
        *frame_out = t.frame;
      }
      return FaultResult::kHandled;
    }

    VmArea* vma = as.FindVma(va);
    if (vma == nullptr) {
      ++as.stats().segv_faults;
      CountVm(VmCounter::k_pgfault_segv);
      ODF_TRACE(fault_segv, as.owner_pid(), va, /*prot=*/0);
      return FaultResult::kSegvUnmapped;
    }
    uint32_t needed = access == AccessType::kWrite ? kProtWrite : kProtRead;
    if ((vma->prot & needed) == 0) {
      ++as.stats().segv_faults;
      CountVm(VmCounter::k_pgfault_segv);
      ODF_TRACE(fault_segv, as.owner_pid(), va, /*prot=*/1);
      return FaultResult::kSegvProt;
    }

    if (t.status == TranslateStatus::kNotWritable) {
      if (t.fault_level == PtLevel::kPud) {
        // §4 extension: the PUD write-protection marks a shared PMD table (kOnDemandHuge).
        uint64_t* pud_slot = walker.FindEntry(as.pgd(), va, PtLevel::kPud);
        ODF_CHECK(pud_slot != nullptr);
        DedicatePmdTable(as, EntryBase(va, PtLevel::kPud), pud_slot);
        continue;
      }
      if (t.fault_level == PtLevel::kPmd) {
        uint64_t* pmd_slot = walker.FindEntry(as.pgd(), va, PtLevel::kPmd);
        ODF_CHECK(pmd_slot != nullptr);
        Pte pmd = LoadEntry(pmd_slot);
        Vaddr chunk_base = EntryBase(va, PtLevel::kPmd);
        if (pmd.IsHuge()) {
          HugeCowFault(as, chunk_base, pmd_slot);
        } else {
          // The on-demand-fork path: the PMD write-protection marks a shared PTE table.
          DedicatePteTable(as, chunk_base, pmd_slot);
        }
        continue;
      }
      ODF_CHECK(t.fault_level == PtLevel::kPte)
          << "write-protection fault at unexpected level "
          << static_cast<int>(t.fault_level);
      uint64_t* slot = walker.FindEntry(as.pgd(), va, PtLevel::kPte);
      ODF_CHECK(slot != nullptr);
      DataCowFault(as, *vma, va, slot);
      continue;
    }

    // Not present somewhere along the walk. Installing an entry MUTATES the table it lands
    // in, so any shared table on the path must be dedicated first: sharers' VMA layouts can
    // diverge after fork, and an entry installed into a shared table would silently appear
    // in every sharer's address space. (ODF's "fast read" applies to PRESENT pages only.)
    EnsureExclusivePmdPath(as, va);
    if (vma->huge) {
      uint64_t* pmd_slot = walker.EnsureEntry(as.pgd(), va, PtLevel::kPmd);
      Pte pmd = LoadEntry(pmd_slot);
      if (!pmd.IsPresent()) {
        HugeDemandInstall(as, *vma, EntryBase(va, PtLevel::kPmd), pmd_slot);
      }
      continue;
    }
    uint64_t* pmd_probe = walker.FindEntry(as.pgd(), va, PtLevel::kPmd);
    if (pmd_probe != nullptr) {
      Pte pmd_entry = LoadEntry(pmd_probe);
      if (pmd_entry.IsPresent() && !pmd_entry.IsHuge() &&
          as.allocator().GetMeta(pmd_entry.frame())
                  .pt_share_count.load(std::memory_order_acquire) > 1) {
        DedicatePteTable(as, EntryBase(va, PtLevel::kPmd), pmd_probe);
      }
    }
    uint64_t* slot = walker.EnsureEntry(as.pgd(), va, PtLevel::kPte);
    Pte entry = LoadEntry(slot);
    if (entry.IsSwap()) {
      // Swap-in: bring the page back from the swap device into a fresh private frame.
      SwapSpace* swap = as.swap_space();
      ODF_CHECK(swap != nullptr);
      FrameId frame = as.allocator().Allocate(kPageFlagAnon);
      std::byte* dst = as.allocator().MaterializeData(frame, /*zero=*/false);
      swap->ReadIn(entry.swap_slot(), dst);
      swap->DecRef(entry.swap_slot());
      uint64_t flags = kPtePresent | kPteUser | kPteAccessed;
      if (vma->IsWritable()) {
        flags |= kPteWritable;
      }
      StoreEntry(slot, Pte::Make(frame, flags));
      ++as.stats().swap_in_faults;
      CountVm(VmCounter::k_pgfault_swap_in);
      ODF_TRACE(fault_swap_in, as.owner_pid(), va, entry.swap_slot());
      continue;
    }
    if (!entry.IsPresent()) {
      DemandInstall(as, *vma, va, slot);
    }
    // Present but blocked: loop back; the NotWritable branch will resolve it.
  }
  ODF_CHECK(false) << "fault handler failed to converge at va " << va;
  return FaultResult::kSegvUnmapped;
}

}  // namespace odf
