#include "src/mm/swap.h"

#include <cstring>

#include "src/debug/lockdep.h"
#include "src/fi/fault_inject.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

namespace {

// Swap-device lock class. Taken from the reclaimer and the swap-in fault path; never held
// while acquiring another mm lock (all callers copy in/out under it and return).
debug::LockClass g_swap_lock_class("SwapSpace::mutex_");

}  // namespace

SwapSlot SwapSpace::WriteOut(const std::byte* src) {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  SwapSlot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
    ++stats_.total_slots;
  }
  Slot& entry = slots_[slot];
  ODF_DCHECK(entry.refs == 0);
  if (src != nullptr) {
    if (entry.data == nullptr) {
      entry.data = std::make_unique<std::byte[]>(kPageSize);
    }
    std::memcpy(entry.data.get(), src, kPageSize);
  } else {
    entry.data.reset();  // Logical zero; no device storage needed.
  }
  entry.refs = 1;
  ++stats_.slots_in_use;
  ++stats_.writes;
  CountVm(VmCounter::k_swap_writes);
  return slot;
}

SwapSlot SwapSpace::TryWriteOut(const std::byte* src) {
  if (fi::ShouldInject(FiSite::k_swap_out)) {
    ODF_TRACE(swap_io_error, 0, /*is_write=*/1);
    CountVm(VmCounter::k_swap_io_errors);
    debug::MutexGuard guard(mutex_, g_swap_lock_class);
    ++stats_.io_errors;
    return kInvalidSwapSlot;
  }
  return WriteOut(src);
}

void SwapSpace::ReadIn(SwapSlot slot, std::byte* dst) {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  ODF_CHECK(slot < slots_.size() && slots_[slot].refs > 0) << "read of free swap slot " << slot;
  const Slot& entry = slots_[slot];
  if (entry.data == nullptr) {
    std::memset(dst, 0, kPageSize);
  } else {
    std::memcpy(dst, entry.data.get(), kPageSize);
  }
  ++stats_.reads;
  CountVm(VmCounter::k_swap_reads);
}

bool SwapSpace::TryReadIn(SwapSlot slot, std::byte* dst) {
  if (fi::ShouldInject(FiSite::k_swap_in)) {
    ODF_TRACE(swap_io_error, 0, /*is_write=*/0, slot);
    CountVm(VmCounter::k_swap_io_errors);
    debug::MutexGuard guard(mutex_, g_swap_lock_class);
    ++stats_.io_errors;
    return false;
  }
  ReadIn(slot, dst);
  return true;
}

void SwapSpace::IncRef(SwapSlot slot) {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  ODF_CHECK(slot < slots_.size() && slots_[slot].refs > 0) << "incref of free slot " << slot;
  ++slots_[slot].refs;
}

void SwapSpace::DecRef(SwapSlot slot) {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  ODF_CHECK(slot < slots_.size() && slots_[slot].refs > 0) << "decref of free slot " << slot;
  if (--slots_[slot].refs == 0) {
    free_slots_.push_back(slot);
    --stats_.slots_in_use;
    // Keep the buffer for recycling; a zeroing WriteOut replaces content anyway.
  }
}

uint32_t SwapSpace::RefCount(SwapSlot slot) const {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  return slot < slots_.size() ? slots_[slot].refs : 0;
}

SwapStats SwapSpace::Stats() const {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  return stats_;
}

const std::byte* SwapSpace::PeekSlot(SwapSlot slot) const {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  return slot < slots_.size() ? slots_[slot].data.get() : nullptr;
}

bool SwapSpace::AllFree() const {
  debug::MutexGuard guard(mutex_, g_swap_lock_class);
  return stats_.slots_in_use == 0;
}

}  // namespace odf
