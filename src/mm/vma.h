// Virtual memory areas (VMA): one contiguous region of an address space with uniform
// protection and backing (anonymous / file, private / shared, 4 KiB / 2 MiB pages).
#ifndef ODF_SRC_MM_VMA_H_
#define ODF_SRC_MM_VMA_H_

#include <cstdint>
#include <memory>

#include "src/fs/mem_fs.h"
#include "src/pt/geometry.h"

namespace odf {

enum VmProt : uint32_t {
  kProtNone = 0,
  kProtRead = 1u << 0,
  kProtWrite = 1u << 1,
};

enum class VmaKind {
  kAnonPrivate,  // MAP_PRIVATE | MAP_ANONYMOUS — the paper's primary workload.
  kFilePrivate,  // MAP_PRIVATE file mapping (COW from the page cache).
  kFileShared,   // MAP_SHARED file mapping (writes hit the page cache).
};

struct VmArea {
  Vaddr start = 0;
  Vaddr end = 0;  // Exclusive.
  uint32_t prot = kProtNone;
  VmaKind kind = VmaKind::kAnonPrivate;
  bool huge = false;  // Backed by 2 MiB compound pages mapped at the PMD level.
  std::shared_ptr<MemFile> file;
  uint64_t file_offset = 0;  // Byte offset of `start` within the file; page-aligned.

  uint64_t length() const { return end - start; }
  bool Contains(Vaddr va) const { return va >= start && va < end; }
  bool Overlaps(Vaddr lo, Vaddr hi) const { return start < hi && lo < end; }
  bool IsFileBacked() const { return kind != VmaKind::kAnonPrivate; }
  bool IsWritable() const { return (prot & kProtWrite) != 0; }

  // File page index backing virtual address `va`.
  uint64_t FilePageIndex(Vaddr va) const { return (file_offset + (va - start)) / kPageSize; }
};

}  // namespace odf

#endif  // ODF_SRC_MM_VMA_H_
