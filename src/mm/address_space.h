// AddressSpace: the simulator's mm_struct. Owns the VMA list, the root page table (PGD), the
// software TLB, and the sharded MM lock table; provides mmap/munmap/mremap/mprotect and
// pre-faulting.
//
// Thread-safety (docs/debugging.md "Lock order", docs/performance.md "Lock sharding"):
// every layout-mutating entry point (the mmap family, fork's copy phase, teardown) takes
// this space's MmLockTable WriteScope — the mmap_lock analog, but per address space and
// only writer-vs-reader: faulting threads hold the gate SHARED plus exactly one 2 MiB-range
// shard mutex, so faults in disjoint ranges never serialize on this structure. PTE tables
// shared across address spaces via on-demand-fork are additionally protected by per-table
// split locks (see range_ops.h), and entry words are accessed through atomic_ref so
// concurrent walkers in sharing processes are well-defined.
#ifndef ODF_SRC_MM_ADDRESS_SPACE_H_
#define ODF_SRC_MM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <vector>
#include <memory>

#include "src/mm/swap.h"
#include "src/mm/vma.h"
#include "src/phys/frame_allocator.h"
#include "src/pt/mm_locks.h"
#include "src/pt/tlb.h"
#include "src/pt/walker.h"
#include "src/util/relaxed_counter.h"

namespace odf {

namespace reclaim {
class RmapRegistry;
}  // namespace reclaim

// Fault counters. Relaxed atomics: concurrent faulters in disjoint shards bump these with
// no lock in common, and monitoring reads race the bumps by design (util/relaxed_counter.h).
struct MmStats {
  util::RelaxedCounter demand_zero_faults;
  util::RelaxedCounter file_faults;
  util::RelaxedCounter cow_page_faults;       // 4 KiB data-page copies.
  util::RelaxedCounter cow_huge_faults;       // 2 MiB data-page copies.
  util::RelaxedCounter cow_reuse_faults;      // Sole owner: write-enabled in place, no copy.
  util::RelaxedCounter pte_table_cow_faults;  // Shared PTE table copied on demand (ODF path).
  util::RelaxedCounter pte_table_fixups;      // share_count==1: PMD write-enable, no copy.
  util::RelaxedCounter pmd_table_cow_faults;  // Shared PMD table copied (kOnDemandHuge, §4).
  util::RelaxedCounter pmd_table_fixups;      // share_count==1: PUD write-enable, no copy.
  util::RelaxedCounter swap_in_faults;        // Pages read back from the swap device.
  util::RelaxedCounter pages_swapped_out;     // By the clock reclaimer.
  util::RelaxedCounter segv_faults;
  util::RelaxedCounter oom_faults;            // Faults failed with kOom (allocation denied).
  util::RelaxedCounter swap_io_faults;        // Faults failed with kSwapIoError.
};

class AddressSpace {
 public:
  // `rmap`, when provided (the Kernel always does), receives every leaf-PTE install and
  // clear this address space performs, feeding page reclaim (src/reclaim). Standalone
  // mm-layer tests may pass nullptr: all rmap maintenance is skipped.
  explicit AddressSpace(FrameAllocator* allocator, SwapSpace* swap = nullptr,
                        reclaim::RmapRegistry* rmap = nullptr);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // --- Mapping syscall analogs (addresses chosen by a bump allocator unless hinted) ---

  // mmap(MAP_PRIVATE|MAP_ANONYMOUS). `huge` requests 2 MiB pages (MAP_HUGETLB analog);
  // huge mappings are 2 MiB-aligned and sized. Returns the mapped start address.
  Vaddr MapAnonymous(uint64_t length, uint32_t prot, bool huge = false, Vaddr hint = 0);

  // mmap of a file region. `shared` selects MAP_SHARED vs MAP_PRIVATE.
  Vaddr MapFile(std::shared_ptr<MemFile> file, uint64_t file_offset, uint64_t length,
                uint32_t prot, bool shared, Vaddr hint = 0);

  // munmap. Partial unmaps split VMAs. Huge VMAs must be unmapped at 2 MiB granularity.
  void Unmap(Vaddr start, uint64_t length);

  // mremap(MREMAP_MAYMOVE): shrinks in place, grows in place when the gap allows, otherwise
  // moves the mapping (copying page-table entries, not data). Returns the new start.
  Vaddr Remap(Vaddr old_start, uint64_t old_length, uint64_t new_length);

  // mprotect over an existing mapped range.
  void Protect(Vaddr start, uint64_t length, uint32_t prot);

  // Pre-faults every page of the range (MAP_POPULATE analog): pages become present and, for
  // writable VMAs, writable — without materialising data buffers. Benchmarks use this to
  // stand up paper-scale "initialised" memory cheaply (see DESIGN.md).
  void PopulateRange(Vaddr start, uint64_t length);

  // madvise(MADV_DONTNEED): drops the range's current pages without unmapping. Anonymous
  // memory reads back as zeros afterwards; private file pages revert to the page-cache
  // view. Other processes sharing PTE tables with this range are unaffected (the shared
  // table is dropped or dedicated per §3.3, exactly like munmap).
  void AdviseDontNeed(Vaddr start, uint64_t length);

  // mincore: one byte per page in [start, start+length): bit 0 = resident, bit 1 = on the
  // swap device. Does not fault anything in.
  void Mincore(Vaddr start, uint64_t length, std::vector<uint8_t>* out);

  // Unmaps everything (exit teardown). Also called by the destructor.
  void TearDown();

  // --- Introspection ---

  VmArea* FindVma(Vaddr va);
  const std::map<Vaddr, VmArea>& vmas() const { return vmas_; }
  FrameId pgd() const { return pgd_; }
  Tlb& tlb() { return tlb_; }
  Walker& walker() { return walker_; }
  FrameAllocator& allocator() { return *allocator_; }
  SwapSpace* swap_space() { return swap_; }
  reclaim::RmapRegistry* rmap() { return rmap_; }
  MmStats& stats() { return stats_; }
  const MmStats& stats() const { return stats_; }

  // The sharded lock table guarding this address space (src/pt/mm_locks.h): the fault path
  // takes ReadScope + one ShardScope; layout mutators (and fork) take WriteScope; the
  // lock-free read protocol validates against its shard generations.
  MmLockTable& locks() { return locks_; }

  // Pid of the owning process (0 before attachment); lets mm-layer tracepoints attribute
  // fault events without a dependency on the proc layer.
  int32_t owner_pid() const { return owner_pid_; }
  void set_owner_pid(int32_t pid) { owner_pid_ = pid; }

  // Total mapped bytes across VMAs.
  uint64_t MappedBytes() const;

  // Counts present entries the slow way (testing aid).
  uint64_t CountPresentPtes();

  // Splits the VMA containing `va` so that `va` becomes a VMA boundary. No-op when already
  // a boundary. Exposed for range operations.
  void SplitVmaAt(Vaddr va);

  // Inserts a verbatim copy of `vma` at the same address range (fork support; the child must
  // mirror the parent's layout exactly). The range must be free in this address space.
  void AdoptVmaForFork(const VmArea& vma);

 private:
  Vaddr AllocateRange(uint64_t length, uint64_t alignment, Vaddr hint);
  void InsertVma(VmArea vma);

  FrameAllocator* allocator_;
  SwapSpace* swap_;
  reclaim::RmapRegistry* rmap_;
  Walker walker_;
  FrameId pgd_;
  // locks_ before tlb_: the TLB routes every invalidation's shard-generation bump into the
  // lock table, so the table must outlive (construct before, destruct after) the TLB.
  MmLockTable locks_;
  Tlb tlb_{&locks_};
  std::map<Vaddr, VmArea> vmas_;  // Keyed by start address.
  Vaddr mmap_cursor_;
  MmStats stats_;
  int32_t owner_pid_ = 0;
  bool torn_down_ = false;
};

}  // namespace odf

#endif  // ODF_SRC_MM_ADDRESS_SPACE_H_
