// AddressSpace: the simulator's mm_struct. Owns the VMA list, the root page table (PGD), and
// the software TLB; provides mmap/munmap/mremap/mprotect and pre-faulting.
//
// Thread-safety: each AddressSpace is mutated under its own lock (the mmap_lock analog),
// taken by the Kernel facade / fork paths. PTE tables shared across address spaces via
// on-demand-fork are additionally protected by per-table split locks (see range_ops.h), and
// entry words are accessed through atomic_ref so concurrent walkers in sharing processes are
// well-defined.
#ifndef ODF_SRC_MM_ADDRESS_SPACE_H_
#define ODF_SRC_MM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <vector>
#include <memory>
#include <mutex>

#include "src/mm/swap.h"
#include "src/mm/vma.h"
#include "src/phys/frame_allocator.h"
#include "src/pt/tlb.h"
#include "src/pt/walker.h"

namespace odf {

namespace reclaim {
class RmapRegistry;
}  // namespace reclaim

struct MmStats {
  uint64_t demand_zero_faults = 0;
  uint64_t file_faults = 0;
  uint64_t cow_page_faults = 0;       // 4 KiB data-page copies.
  uint64_t cow_huge_faults = 0;       // 2 MiB data-page copies.
  uint64_t cow_reuse_faults = 0;      // Sole owner: write-enabled in place, no copy.
  uint64_t pte_table_cow_faults = 0;  // Shared PTE table copied on demand (the ODF path).
  uint64_t pte_table_fixups = 0;      // share_count==1: PMD write-enable, no copy.
  uint64_t pmd_table_cow_faults = 0;  // Shared PMD table copied (kOnDemandHuge, §4).
  uint64_t pmd_table_fixups = 0;      // share_count==1: PUD write-enable, no copy.
  uint64_t swap_in_faults = 0;        // Pages read back from the swap device.
  uint64_t pages_swapped_out = 0;     // By the clock reclaimer.
  uint64_t segv_faults = 0;
  uint64_t oom_faults = 0;            // Faults failed with kOom (allocation denied).
  uint64_t swap_io_faults = 0;        // Faults failed with kSwapIoError.
};

class AddressSpace {
 public:
  // `rmap`, when provided (the Kernel always does), receives every leaf-PTE install and
  // clear this address space performs, feeding page reclaim (src/reclaim). Standalone
  // mm-layer tests may pass nullptr: all rmap maintenance is skipped.
  explicit AddressSpace(FrameAllocator* allocator, SwapSpace* swap = nullptr,
                        reclaim::RmapRegistry* rmap = nullptr);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // --- Mapping syscall analogs (addresses chosen by a bump allocator unless hinted) ---

  // mmap(MAP_PRIVATE|MAP_ANONYMOUS). `huge` requests 2 MiB pages (MAP_HUGETLB analog);
  // huge mappings are 2 MiB-aligned and sized. Returns the mapped start address.
  Vaddr MapAnonymous(uint64_t length, uint32_t prot, bool huge = false, Vaddr hint = 0);

  // mmap of a file region. `shared` selects MAP_SHARED vs MAP_PRIVATE.
  Vaddr MapFile(std::shared_ptr<MemFile> file, uint64_t file_offset, uint64_t length,
                uint32_t prot, bool shared, Vaddr hint = 0);

  // munmap. Partial unmaps split VMAs. Huge VMAs must be unmapped at 2 MiB granularity.
  void Unmap(Vaddr start, uint64_t length);

  // mremap(MREMAP_MAYMOVE): shrinks in place, grows in place when the gap allows, otherwise
  // moves the mapping (copying page-table entries, not data). Returns the new start.
  Vaddr Remap(Vaddr old_start, uint64_t old_length, uint64_t new_length);

  // mprotect over an existing mapped range.
  void Protect(Vaddr start, uint64_t length, uint32_t prot);

  // Pre-faults every page of the range (MAP_POPULATE analog): pages become present and, for
  // writable VMAs, writable — without materialising data buffers. Benchmarks use this to
  // stand up paper-scale "initialised" memory cheaply (see DESIGN.md).
  void PopulateRange(Vaddr start, uint64_t length);

  // madvise(MADV_DONTNEED): drops the range's current pages without unmapping. Anonymous
  // memory reads back as zeros afterwards; private file pages revert to the page-cache
  // view. Other processes sharing PTE tables with this range are unaffected (the shared
  // table is dropped or dedicated per §3.3, exactly like munmap).
  void AdviseDontNeed(Vaddr start, uint64_t length);

  // mincore: one byte per page in [start, start+length): bit 0 = resident, bit 1 = on the
  // swap device. Does not fault anything in.
  void Mincore(Vaddr start, uint64_t length, std::vector<uint8_t>* out);

  // Unmaps everything (exit teardown). Also called by the destructor.
  void TearDown();

  // --- Introspection ---

  VmArea* FindVma(Vaddr va);
  const std::map<Vaddr, VmArea>& vmas() const { return vmas_; }
  FrameId pgd() const { return pgd_; }
  Tlb& tlb() { return tlb_; }
  Walker& walker() { return walker_; }
  FrameAllocator& allocator() { return *allocator_; }
  SwapSpace* swap_space() { return swap_; }
  reclaim::RmapRegistry* rmap() { return rmap_; }
  MmStats& stats() { return stats_; }
  const MmStats& stats() const { return stats_; }
  std::mutex& lock() { return lock_; }

  // Pid of the owning process (0 before attachment); lets mm-layer tracepoints attribute
  // fault events without a dependency on the proc layer.
  int32_t owner_pid() const { return owner_pid_; }
  void set_owner_pid(int32_t pid) { owner_pid_ = pid; }

  // Total mapped bytes across VMAs.
  uint64_t MappedBytes() const;

  // Counts present entries the slow way (testing aid).
  uint64_t CountPresentPtes();

  // Splits the VMA containing `va` so that `va` becomes a VMA boundary. No-op when already
  // a boundary. Exposed for range operations.
  void SplitVmaAt(Vaddr va);

  // Inserts a verbatim copy of `vma` at the same address range (fork support; the child must
  // mirror the parent's layout exactly). The range must be free in this address space.
  void AdoptVmaForFork(const VmArea& vma);

 private:
  Vaddr AllocateRange(uint64_t length, uint64_t alignment, Vaddr hint);
  void InsertVma(VmArea vma);

  FrameAllocator* allocator_;
  SwapSpace* swap_;
  reclaim::RmapRegistry* rmap_;
  Walker walker_;
  FrameId pgd_;
  Tlb tlb_;
  std::map<Vaddr, VmArea> vmas_;  // Keyed by start address.
  Vaddr mmap_cursor_;
  MmStats stats_;
  std::mutex lock_;
  int32_t owner_pid_ = 0;
  bool torn_down_ = false;
};

}  // namespace odf

#endif  // ODF_SRC_MM_ADDRESS_SPACE_H_
