// In-memory filesystem substrate (tmpfs-like) for file-backed mappings (paper §3.7).
//
// File content lives directly in page-cache frames: each file holds one reference per cached
// frame. Shared file mappings install the cache frame itself; private file mappings install
// it read-only and the fault handler COWs it into an anonymous frame on write — the same
// ownership rules the kernel applies, which is what lets on-demand-fork "leave the work of
// managing physical memory pages" to the filesystem for these regions.
#ifndef ODF_SRC_FS_MEM_FS_H_
#define ODF_SRC_FS_MEM_FS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "src/phys/frame_allocator.h"
#include "src/pt/geometry.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {

class MemFile {
 public:
  MemFile(std::string name, FrameAllocator* allocator)
      : name_(std::move(name)), allocator_(allocator) {}
  ~MemFile();

  MemFile(const MemFile&) = delete;
  MemFile& operator=(const MemFile&) = delete;

  const std::string& name() const { return name_; }
  uint64_t size() const;

  // Returns the page-cache frame for page `index`, faulting it in (zero-filled) if absent.
  // The returned frame stays referenced by the cache; mappers take their own reference.
  FrameId GetPage(uint64_t index);

  // Returns the cached frame or kInvalidFrame without populating.
  FrameId PeekPage(uint64_t index) const;

  // File I/O through the page cache.
  void Write(uint64_t offset, std::span<const std::byte> data);
  void Read(uint64_t offset, std::span<std::byte> out) const;

  // Shrinks or grows the file; truncated pages are released from the cache.
  void Truncate(uint64_t new_size);

  uint64_t CachedPages() const;

  // Repoints every cached page currently backed by `old_frame` to `new_frame` (page
  // migration and hard offline of a page-cache frame, src/mf). Reference ownership swaps:
  // the cache's reference to `old_frame` transfers to the caller (who drops it once the
  // relocation is complete) and the caller's reference to `new_frame` transfers to the
  // cache. Returns the number of slots repointed (0 when the frame is not cached here; a
  // frame backs at most one page of one file, so 1 otherwise). Caller must hold the
  // exclusive MmGate — faulting mappers must not observe the cache mid-swap.
  size_t ReplaceFrame(FrameId old_frame, FrameId new_frame);

  // Invokes `fn(page_index, frame)` for every cached page (auditing).
  void ForEachCachedPage(const std::function<void(uint64_t, FrameId)>& fn) const;

 private:
  std::string name_;
  FrameAllocator* allocator_;
  mutable util::Mutex mutex_;
  uint64_t size_ ODF_GUARDED_BY(mutex_) = 0;
  std::unordered_map<uint64_t, FrameId> cache_ ODF_GUARDED_BY(mutex_);
};

class MemFilesystem {
 public:
  explicit MemFilesystem(FrameAllocator* allocator) : allocator_(allocator) {}

  // Creates the file if absent; returns it either way.
  std::shared_ptr<MemFile> Open(const std::string& path);

  // Returns nullptr if absent.
  std::shared_ptr<MemFile> Lookup(const std::string& path) const;

  // Unlinks the path. The file's memory is released when the last mapping drops it.
  bool Remove(const std::string& path);

  size_t FileCount() const;

  // Invokes `fn(file)` for every file currently in the filesystem (auditing).
  void ForEachFile(const std::function<void(const std::shared_ptr<MemFile>&)>& fn) const;

 private:
  FrameAllocator* allocator_;
  mutable util::Mutex mutex_;
  std::map<std::string, std::shared_ptr<MemFile>> files_ ODF_GUARDED_BY(mutex_);
};

}  // namespace odf

#endif  // ODF_SRC_FS_MEM_FS_H_
