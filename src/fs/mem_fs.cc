#include "src/fs/mem_fs.h"

#include <algorithm>
#include <cstring>

#include "src/util/log.h"

namespace odf {

MemFile::~MemFile() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [index, frame] : cache_) {
    allocator_->DecRef(frame);
  }
  cache_.clear();
}

uint64_t MemFile::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return size_;
}

FrameId MemFile::GetPage(uint64_t index) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    return it->second;
  }
  // Faulting a page into the cache does not change the file size (pages past EOF can be
  // cached for mappings, as in real page caches).
  FrameId frame = allocator_->Allocate(kPageFlagFile | kPageFlagZeroFill);
  cache_.emplace(index, frame);
  return frame;
}

FrameId MemFile::PeekPage(uint64_t index) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = cache_.find(index);
  return it == cache_.end() ? kInvalidFrame : it->second;
}

void MemFile::Write(uint64_t offset, std::span<const std::byte> data) {
  size_t written = 0;
  while (written < data.size()) {
    uint64_t pos = offset + written;
    uint64_t index = pos / kPageSize;
    uint64_t in_page = pos % kPageSize;
    size_t chunk = std::min<size_t>(data.size() - written, kPageSize - in_page);
    FrameId frame = GetPage(index);
    std::byte* dest = allocator_->MaterializeData(frame);
    std::memcpy(dest + in_page, data.data() + written, chunk);
    written += chunk;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  size_ = std::max(size_, offset + data.size());
}

void MemFile::Read(uint64_t offset, std::span<std::byte> out) const {
  size_t done = 0;
  while (done < out.size()) {
    uint64_t pos = offset + done;
    uint64_t index = pos / kPageSize;
    uint64_t in_page = pos % kPageSize;
    size_t chunk = std::min<size_t>(out.size() - done, kPageSize - in_page);
    FrameId frame = PeekPage(index);
    if (frame == kInvalidFrame) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      const std::byte* src = allocator_->PeekData(frame);
      if (src == nullptr) {
        std::memset(out.data() + done, 0, chunk);
      } else {
        std::memcpy(out.data() + done, src + in_page, chunk);
      }
    }
    done += chunk;
  }
}

void MemFile::Truncate(uint64_t new_size) {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t keep_pages = (new_size + kPageSize - 1) / kPageSize;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first >= keep_pages) {
      allocator_->DecRef(it->second);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  size_ = new_size;
}

uint64_t MemFile::CachedPages() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return cache_.size();
}

void MemFile::ForEachCachedPage(const std::function<void(uint64_t, FrameId)>& fn) const {
  std::lock_guard<std::mutex> guard(mutex_);
  for (const auto& [index, frame] : cache_) {
    fn(index, frame);
  }
}

std::shared_ptr<MemFile> MemFilesystem::Open(const std::string& path) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    return it->second;
  }
  auto file = std::make_shared<MemFile>(path, allocator_);
  files_.emplace(path, file);
  return file;
}

std::shared_ptr<MemFile> MemFilesystem::Lookup(const std::string& path) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

bool MemFilesystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> guard(mutex_);
  return files_.erase(path) != 0;
}

size_t MemFilesystem::FileCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return files_.size();
}

void MemFilesystem::ForEachFile(
    const std::function<void(const std::shared_ptr<MemFile>&)>& fn) const {
  std::lock_guard<std::mutex> guard(mutex_);
  for (const auto& [path, file] : files_) {
    fn(file);
  }
}

}  // namespace odf
