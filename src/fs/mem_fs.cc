#include "src/fs/mem_fs.h"

#include <algorithm>
#include <cstring>

#include "src/debug/lockdep.h"
#include "src/debug/mutation.h"
#include "src/util/log.h"

namespace odf {

namespace {

// Page-cache lock classes. MemFile::mutex_ is held while calling into the frame allocator
// to FREE (Truncate, GetPage's lost-race DecRef), so the recorded order is file -> pool.
// Allocation happens outside mutex_ (it can block in direct reclaim — see mm_gate.h).
debug::LockClass g_mem_file_lock_class("MemFile::mutex_");
debug::LockClass g_mem_fs_lock_class("MemFilesystem::mutex_");

}  // namespace

MemFile::~MemFile() {
  debug::MutationScope mutation;  // Releases every cached frame.
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  for (auto& [index, frame] : cache_) {
    allocator_->DecRef(frame);
  }
  cache_.clear();
}

uint64_t MemFile::size() const {
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  return size_;
}

FrameId MemFile::GetPage(uint64_t index) {
  debug::MutationScope mutation;  // May allocate a page-cache frame.
  {
    debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
    auto it = cache_.find(index);
    if (it != cache_.end()) {
      return it->second;
    }
  }
  // Allocate OUTSIDE mutex_: a NOFAIL allocation under pressure blocks in direct reclaim,
  // and no lock may be held at a quota-wait point (src/reclaim/mm_gate.h). Double-checked
  // insert: a racing caller may have populated the slot meanwhile — keep theirs, free ours.
  // Faulting a page into the cache does not change the file size (pages past EOF can be
  // cached for mappings, as in real page caches).
  FrameId frame = allocator_->Allocate(kPageFlagFile | kPageFlagZeroFill);
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  auto [it, inserted] = cache_.emplace(index, frame);
  if (!inserted) {
    allocator_->DecRef(frame);
  }
  return it->second;
}

FrameId MemFile::PeekPage(uint64_t index) const {
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  auto it = cache_.find(index);
  return it == cache_.end() ? kInvalidFrame : it->second;
}

void MemFile::Write(uint64_t offset, std::span<const std::byte> data) {
  debug::MutationScope mutation;  // Allocates and fills page-cache frames.
  size_t written = 0;
  while (written < data.size()) {
    uint64_t pos = offset + written;
    uint64_t index = pos / kPageSize;
    uint64_t in_page = pos % kPageSize;
    size_t chunk = std::min<size_t>(data.size() - written, kPageSize - in_page);
    FrameId frame = GetPage(index);
    std::byte* dest = allocator_->MaterializeData(frame);
    std::memcpy(dest + in_page, data.data() + written, chunk);
    written += chunk;
  }
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  size_ = std::max(size_, offset + data.size());
}

void MemFile::Read(uint64_t offset, std::span<std::byte> out) const {
  size_t done = 0;
  while (done < out.size()) {
    uint64_t pos = offset + done;
    uint64_t index = pos / kPageSize;
    uint64_t in_page = pos % kPageSize;
    size_t chunk = std::min<size_t>(out.size() - done, kPageSize - in_page);
    FrameId frame = PeekPage(index);
    if (frame == kInvalidFrame) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      const std::byte* src = allocator_->PeekData(frame);
      if (src == nullptr) {
        std::memset(out.data() + done, 0, chunk);
      } else {
        std::memcpy(out.data() + done, src + in_page, chunk);
      }
    }
    done += chunk;
  }
}

void MemFile::Truncate(uint64_t new_size) {
  debug::MutationScope mutation;  // Frees the truncated tail's frames.
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  uint64_t keep_pages = (new_size + kPageSize - 1) / kPageSize;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first >= keep_pages) {
      allocator_->DecRef(it->second);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  size_ = new_size;
}

size_t MemFile::ReplaceFrame(FrameId old_frame, FrameId new_frame) {
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  size_t replaced = 0;
  for (auto& [index, frame] : cache_) {
    if (frame == old_frame) {
      frame = new_frame;
      ++replaced;
    }
  }
  return replaced;
}

uint64_t MemFile::CachedPages() const {
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  return cache_.size();
}

void MemFile::ForEachCachedPage(const std::function<void(uint64_t, FrameId)>& fn) const {
  debug::MutexGuard guard(mutex_, g_mem_file_lock_class);
  for (const auto& [index, frame] : cache_) {
    fn(index, frame);
  }
}

std::shared_ptr<MemFile> MemFilesystem::Open(const std::string& path) {
  debug::MutexGuard guard(mutex_, g_mem_fs_lock_class);
  auto it = files_.find(path);
  if (it != files_.end()) {
    return it->second;
  }
  auto file = std::make_shared<MemFile>(path, allocator_);
  files_.emplace(path, file);
  return file;
}

std::shared_ptr<MemFile> MemFilesystem::Lookup(const std::string& path) const {
  debug::MutexGuard guard(mutex_, g_mem_fs_lock_class);
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

bool MemFilesystem::Remove(const std::string& path) {
  debug::MutexGuard guard(mutex_, g_mem_fs_lock_class);
  return files_.erase(path) != 0;
}

size_t MemFilesystem::FileCount() const {
  debug::MutexGuard guard(mutex_, g_mem_fs_lock_class);
  return files_.size();
}

void MemFilesystem::ForEachFile(
    const std::function<void(const std::shared_ptr<MemFile>&)>& fn) const {
  debug::MutexGuard guard(mutex_, g_mem_fs_lock_class);
  for (const auto& [path, file] : files_) {
    fn(file);
  }
}

}  // namespace odf
