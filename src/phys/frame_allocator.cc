#include "src/phys/frame_allocator.h"

#include <cstring>

#include "src/fi/fault_inject.h"
#include "src/trace/metrics.h"
#include "src/util/log.h"

namespace odf {

FrameAllocator::~FrameAllocator() {
  // Frame data buffers are owned here; release whatever is still materialised.
  for (auto& chunk : chunks_) {
    for (size_t i = 0; i < kChunkSize; ++i) {
      PageMeta& meta = chunk[i];
      if (meta.data != nullptr && !meta.IsCompoundTail()) {
        delete[] meta.data;
        meta.data = nullptr;
      }
    }
  }
}

PageMeta& FrameAllocator::MetaRef(FrameId frame) const {
  size_t chunk = frame >> kChunkShift;
  size_t index = frame & (kChunkSize - 1);
  ODF_DCHECK(chunk < chunks_.size()) << "frame " << frame << " out of range";
  return chunks_[chunk][index];
}

PageMeta& FrameAllocator::GetMeta(FrameId frame) { return MetaRef(frame); }
const PageMeta& FrameAllocator::GetMeta(FrameId frame) const { return MetaRef(frame); }

void FrameAllocator::AddChunkLocked() {
  auto chunk = std::make_unique<PageMeta[]>(kChunkSize);
  FrameId base = static_cast<FrameId>(chunks_.size() << kChunkShift);
  chunks_.push_back(std::move(chunk));
  stats_.total_frames += kChunkSize;
  // Push in reverse so low frame ids are handed out first (mildly better locality).
  for (size_t i = kChunkSize; i-- > 0;) {
    free_list_.push_back(base + static_cast<FrameId>(i));
  }
}

FrameId FrameAllocator::PopFreeLocked() {
  if (free_list_.empty()) {
    AddChunkLocked();
  }
  FrameId frame = free_list_.back();
  free_list_.pop_back();
  return frame;
}

void FrameAllocator::SetFrameLimit(uint64_t frames) {
  std::lock_guard<std::mutex> guard(mutex_);
  frame_limit_ = frames;
}

uint64_t FrameAllocator::frame_limit() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return frame_limit_;
}

void FrameAllocator::SetReclaimCallback(ReclaimCallback callback) {
  std::lock_guard<std::mutex> guard(mutex_);
  reclaim_callback_ = std::move(callback);
}

bool FrameAllocator::TryWaitForQuota(uint64_t frames) {
  // Like the kernel putting the faulting process to sleep while it frees memory (§4): run
  // reclaim rounds until the allocation fits, or report OOM when no progress is possible.
  for (int attempt = 0; attempt < 16; ++attempt) {
    ReclaimCallback callback;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (frame_limit_ == 0 || stats_.allocated_frames + frames <= frame_limit_) {
        return true;
      }
      callback = reclaim_callback_;
    }
    if (!callback) {
      return false;
    }
    uint64_t freed = callback(frames + 64);  // Batch a little slack to avoid thrash.
    if (freed == 0) {
      break;
    }
  }
  std::lock_guard<std::mutex> guard(mutex_);
  return frame_limit_ == 0 || stats_.allocated_frames + frames <= frame_limit_;
}

void FrameAllocator::WaitForQuota(uint64_t frames) {
  ODF_CHECK(TryWaitForQuota(frames))
      << "out of simulated memory: limit " << frame_limit() << " frames, " << frames
      << " wanted, reclaim exhausted (NOFAIL allocation)";
}

FrameId FrameAllocator::Allocate(uint8_t flags) {
  WaitForQuota(1);
  return AllocateGranted(flags);
}

FrameId FrameAllocator::TryAllocate(uint8_t flags) {
  FiSite site =
      (flags & kPageFlagPageTable) != 0 ? FiSite::k_page_table_alloc : FiSite::k_frame_alloc;
  if (fi::ShouldInject(site)) {
    return kInvalidFrame;
  }
  if (!TryWaitForQuota(1)) {
    return kInvalidFrame;
  }
  return AllocateGranted(flags);
}

FrameId FrameAllocator::AllocateGranted(uint8_t flags) {
  std::lock_guard<std::mutex> guard(mutex_);
  FrameId frame = PopFreeLocked();
  PageMeta& meta = MetaRef(frame);
  ODF_DCHECK((meta.flags & kPageFlagAllocated) == 0) << "double allocation of frame " << frame;
  meta.flags = static_cast<uint8_t>(flags | kPageFlagAllocated);
  meta.order = 0;
  meta.compound_head = frame;
  meta.refcount.store(1, std::memory_order_relaxed);
  meta.pt_share_count.store(0, std::memory_order_relaxed);
  ++stats_.allocated_frames;
  if ((flags & kPageFlagPageTable) != 0) {
    ++stats_.page_table_frames;
    if (meta.data == nullptr) {
      meta.data = new std::byte[kPageSize];
      stats_.materialized_bytes += kPageSize;
    }
    std::memset(meta.data, 0, kPageSize);
  }
  CountVm(VmCounter::k_frames_allocated);
  return frame;
}

FrameId FrameAllocator::AllocateCompound(uint8_t flags) {
  WaitForQuota(1u << kHugePageOrder);
  return AllocateCompoundGranted(flags);
}

FrameId FrameAllocator::TryAllocateCompound(uint8_t flags) {
  if (fi::ShouldInject(FiSite::k_compound_alloc)) {
    return kInvalidFrame;
  }
  if (!TryWaitForQuota(1u << kHugePageOrder)) {
    return kInvalidFrame;
  }
  return AllocateCompoundGranted(flags);
}

FrameId FrameAllocator::AllocateCompoundGranted(uint8_t flags) {
  constexpr FrameId kCompoundFrames = 1u << kHugePageOrder;
  std::lock_guard<std::mutex> guard(mutex_);
  FrameId head;
  if (!compound_free_list_.empty()) {
    head = compound_free_list_.back();
    compound_free_list_.pop_back();
  } else {
    // Grow by one chunk dedicated to compounds (like a hugetlb pool): all of its 512-aligned
    // runs go onto the compound free list, amortising the chunk-add cost over 128 compound
    // allocations instead of paying it per fault.
    FrameId base = static_cast<FrameId>(chunks_.size() << kChunkShift);
    chunks_.push_back(std::make_unique<PageMeta[]>(kChunkSize));
    stats_.total_frames += kChunkSize;
    for (FrameId run = static_cast<FrameId>(kChunkSize); run > kCompoundFrames;
         run -= kCompoundFrames) {
      compound_free_list_.push_back(base + run - kCompoundFrames);
    }
    head = base;
    ODF_CHECK((head & (kCompoundFrames - 1)) == 0) << "compound carve misaligned";
  }
  PageMeta& head_meta = MetaRef(head);
  head_meta.flags = static_cast<uint8_t>(flags | kPageFlagAllocated | kPageFlagCompoundHead);
  head_meta.order = static_cast<uint8_t>(kHugePageOrder);
  head_meta.compound_head = head;
  head_meta.refcount.store(1, std::memory_order_relaxed);
  head_meta.pt_share_count.store(0, std::memory_order_relaxed);
  for (FrameId i = 1; i < kCompoundFrames; ++i) {
    PageMeta& tail = MetaRef(head + i);
    tail.flags = static_cast<uint8_t>(flags | kPageFlagAllocated | kPageFlagCompoundTail);
    tail.order = 0;
    tail.compound_head = head;
    tail.refcount.store(0, std::memory_order_relaxed);
  }
  stats_.allocated_frames += kCompoundFrames;
  CountVm(VmCounter::k_frames_allocated, kCompoundFrames);
  return head;
}

void FrameAllocator::IncRef(FrameId frame) {
  GetMeta(frame).refcount.fetch_add(1, std::memory_order_relaxed);
}

void FrameAllocator::DecRef(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  ODF_DCHECK(!meta.IsCompoundTail()) << "DecRef on compound tail " << frame;
  uint32_t previous = meta.refcount.fetch_sub(1, std::memory_order_acq_rel);
  ODF_DCHECK(previous != 0) << "refcount underflow on frame " << frame;
  if (previous == 1) {
    std::lock_guard<std::mutex> guard(mutex_);
    FreeOneLocked(frame);
  }
}

void FrameAllocator::FreeOneLocked(FrameId frame) {
  PageMeta& meta = MetaRef(frame);
  ODF_DCHECK((meta.flags & kPageFlagAllocated) != 0) << "double free of frame " << frame;
  if (meta.data != nullptr) {
    uint64_t bytes = meta.IsCompoundHead() ? kHugePageSize : kPageSize;
    delete[] meta.data;
    meta.data = nullptr;
    stats_.materialized_bytes -= bytes;
  }
  if ((meta.flags & kPageFlagPageTable) != 0) {
    --stats_.page_table_frames;
  }
  if (meta.IsCompoundHead()) {
    constexpr FrameId kCompoundFrames = 1u << kHugePageOrder;
    for (FrameId i = 1; i < kCompoundFrames; ++i) {
      PageMeta& tail = MetaRef(frame + i);
      tail.flags = 0;
      tail.compound_head = kInvalidFrame;
    }
    meta.flags = 0;
    meta.order = 0;
    stats_.allocated_frames -= kCompoundFrames;
    compound_free_list_.push_back(frame);
    CountVm(VmCounter::k_frames_freed, kCompoundFrames);
    return;
  }
  meta.flags = 0;
  meta.compound_head = kInvalidFrame;
  --stats_.allocated_frames;
  free_list_.push_back(frame);
  CountVm(VmCounter::k_frames_freed);
}

std::byte* FrameAllocator::MaterializeData(FrameId frame, bool zero) {
  PageMeta& meta = GetMeta(frame);
  if (meta.IsCompoundTail()) {
    FrameId head = meta.compound_head;
    // A tail materialisation touches only part of the 2 MiB buffer; the rest must be zero.
    std::byte* base = MaterializeData(head, /*zero=*/true);
    return base + (static_cast<uint64_t>(frame - head) << kPageShift);
  }
  if (meta.data != nullptr) {
    return meta.data;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  if (meta.data == nullptr) {
    uint64_t bytes = meta.IsCompoundHead() ? kHugePageSize : kPageSize;
    auto* buffer = new std::byte[bytes];
    if (zero) {
      std::memset(buffer, 0, bytes);
    }
    meta.data = buffer;
    stats_.materialized_bytes += bytes;
  }
  return meta.data;
}

std::byte* FrameAllocator::PeekData(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  if (meta.IsCompoundTail()) {
    FrameId head = meta.compound_head;
    std::byte* base = PeekData(head);
    if (base == nullptr) {
      return nullptr;
    }
    return base + (static_cast<uint64_t>(frame - head) << kPageShift);
  }
  return meta.data;
}

const std::byte* FrameAllocator::PeekData(FrameId frame) const {
  return const_cast<FrameAllocator*>(this)->PeekData(frame);
}

uint64_t* FrameAllocator::TableEntries(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  ODF_DCHECK(meta.IsPageTable()) << "frame " << frame << " is not a page table";
  return reinterpret_cast<uint64_t*>(meta.data);
}

FrameAllocatorStats FrameAllocator::Stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

bool FrameAllocator::AllFree() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_.allocated_frames == 0;
}

}  // namespace odf
