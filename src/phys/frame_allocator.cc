#include "src/phys/frame_allocator.h"

#include <array>
#include <cstring>

#include "src/debug/debug.h"
#include "src/debug/lockdep.h"
#include "src/fi/fault_inject.h"
#include "src/phys/per_cpu_cache.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"

namespace odf {

namespace {

using phys_internal::CacheForThread;
using phys_internal::PerCpuCache;

// Never-reused allocator identities for the per-thread cache table (per_cpu_cache.h).
std::atomic<uint64_t> g_next_allocator_id{1};

// Striped materialisation locks (the PtSplitLock pattern): concurrent COW faults
// materialising different frames never serialise on one mutex, and the shared-pool lock is
// kept out of the data path entirely.
constexpr size_t kMaterializeStripes = 64;
util::Mutex g_materialize_stripes[kMaterializeStripes];

util::Mutex& MaterializeStripe(FrameId frame) {
  return g_materialize_stripes[frame % kMaterializeStripes];
}

// Lockdep classes (debug-vm builds only; empty tags otherwise). All 64 materialize
// stripes share one class, exactly like lockdep keying lock instances by type.
debug::LockClass g_pool_lock_class("FrameAllocator::mutex_");
debug::LockClass g_materialize_lock_class("FrameAllocator::materialize_stripe");

}  // namespace

FrameAllocator::FrameAllocator()
    : id_(g_next_allocator_id.fetch_add(1, std::memory_order_relaxed)) {}

FrameAllocator::~FrameAllocator() {
  // First orphan this allocator's per-thread caches so exiting threads do not drain into
  // freed memory; the frame ids parked in them die with the metadata below.
  phys_internal::RetireAllocatorCaches(this);
  // Frame data buffers are owned here; release whatever is still materialised.
  for (auto& chunk : chunks_) {
    for (size_t i = 0; i < kChunkSize; ++i) {
      PageMeta& meta = chunk[i];
      std::byte* data = meta.data.load(std::memory_order_relaxed);
      if (data != nullptr && !meta.IsCompoundTail()) {
        delete[] data;
        meta.data.store(nullptr, std::memory_order_relaxed);
      }
    }
  }
}

PageMeta& FrameAllocator::MetaRef(FrameId frame) const {
  size_t chunk = frame >> kChunkShift;
  size_t index = frame & (kChunkSize - 1);
  ODF_DCHECK(chunk < kMaxChunks) << "frame " << frame << " out of range";
  // Acquire pairs with the release store in AddChunkLocked: a thread handed a frame id by
  // another thread sees fully-constructed metadata even though chunk growth is concurrent.
  PageMeta* base = chunk_table_[chunk].load(std::memory_order_acquire);
  ODF_DCHECK(base != nullptr) << "frame " << frame << " in ungrown chunk";
  return base[index];
}

PageMeta& FrameAllocator::GetMeta(FrameId frame) { return MetaRef(frame); }
const PageMeta& FrameAllocator::GetMeta(FrameId frame) const { return MetaRef(frame); }

void FrameAllocator::AddChunkLocked() {
  ODF_CHECK(chunks_.size() < kMaxChunks)
      << "simulated physical memory exhausted (" << kMaxChunks << " chunks)";
  auto chunk = std::make_unique<PageMeta[]>(kChunkSize);
  size_t slot = chunks_.size();
  FrameId base = static_cast<FrameId>(slot << kChunkShift);
  chunk_table_[slot].store(chunk.get(), std::memory_order_release);
  chunks_.push_back(std::move(chunk));
  stats_.total_frames.fetch_add(kChunkSize, std::memory_order_relaxed);
  // Push in reverse so low frame ids are handed out first (mildly better locality).
  for (size_t i = kChunkSize; i-- > 0;) {
    free_list_.push_back(base + static_cast<FrameId>(i));
  }
}

FrameId FrameAllocator::PopFreeLocked() {
  for (;;) {
    if (free_list_.empty()) {
      AddChunkLocked();
    }
    FrameId frame = free_list_.back();
    free_list_.pop_back();
    if (MetaRef(frame).IsHwPoisoned()) {
      // Lazy quarantine: a frame poisoned while it sat on the free list (or while parked
      // in a per-thread cache that later spilled here) is retired at its next pop instead
      // of being handed out. Poison-check-on-alloc, at the allocator's chokepoint.
      QuarantineLocked(frame);
      continue;
    }
    return frame;
  }
}

void FrameAllocator::QuarantineLocked(FrameId frame) {
  quarantine_.push_back(frame);
  stats_.quarantined_frames.fetch_add(1, std::memory_order_relaxed);
}

void FrameAllocator::SetFrameLimit(uint64_t frames) {
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  frame_limit_.store(frames, std::memory_order_relaxed);
  if (!watermarks_explicit_) {
    // min_free_kbytes-style scaling; +4 keeps tiny test pools from a zero floor.
    uint64_t min = frames == 0 ? 0 : frames / 64 + 4;
    wm_min_.store(min, std::memory_order_relaxed);
    wm_low_.store(min * 2, std::memory_order_relaxed);
    wm_high_.store(min * 3, std::memory_order_relaxed);
  }
}

uint64_t FrameAllocator::frame_limit() const {
  return frame_limit_.load(std::memory_order_relaxed);
}

void FrameAllocator::SetReclaimCallback(ReclaimCallback callback) {
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  reclaim_callback_ = std::move(callback);
}

void FrameAllocator::SetWatermarks(Watermarks wm) {
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  wm_min_.store(wm.min, std::memory_order_relaxed);
  wm_low_.store(wm.low, std::memory_order_relaxed);
  wm_high_.store(wm.high, std::memory_order_relaxed);
  watermarks_explicit_ = true;
}

FrameAllocator::Watermarks FrameAllocator::watermarks() const {
  return Watermarks{wm_min_.load(std::memory_order_relaxed),
                    wm_low_.load(std::memory_order_relaxed),
                    wm_high_.load(std::memory_order_relaxed)};
}

uint64_t FrameAllocator::FreeFrames() const {
  uint64_t limit = frame_limit_.load(std::memory_order_relaxed);
  if (limit == 0) {
    return UINT64_MAX;
  }
  uint64_t allocated = stats_.allocated_frames.load(std::memory_order_relaxed);
  return allocated >= limit ? 0 : limit - allocated;
}

void FrameAllocator::SetPressureCallback(PressureCallback callback) {
  bool armed = callback != nullptr;
  {
    debug::MutexGuard guard(mutex_, g_pool_lock_class);
    pressure_callback_ = std::move(callback);
  }
  pressure_armed_.store(armed, std::memory_order_release);
}

void FrameAllocator::MaybeWakeReclaim(uint64_t want) {
  // Fast path: one relaxed load when no daemon is listening (the common case in tests).
  if (!pressure_armed_.load(std::memory_order_acquire)) {
    return;
  }
  uint64_t free = FreeFrames();
  uint64_t low = wm_low_.load(std::memory_order_relaxed);
  if (free == UINT64_MAX || free >= low + want) {
    return;
  }
  PressureCallback callback;
  {
    debug::MutexGuard guard(mutex_, g_pool_lock_class);
    callback = pressure_callback_;
  }
  if (callback) {
    callback();
  }
}

bool FrameAllocator::TryWaitForQuota(uint64_t frames) {
  // Nudge kswapd first — even when this allocation fits, crossing LOW should start the
  // background daemon so later allocations find headroom (the wakeup_kswapd analog).
  MaybeWakeReclaim(frames);
  // Like the kernel putting the faulting process to sleep while it frees memory (§4): run
  // reclaim rounds until the allocation fits, or report OOM when no progress is possible.
  for (int attempt = 0; attempt < 16; ++attempt) {
    uint64_t limit = frame_limit_.load(std::memory_order_relaxed);
    if (limit == 0 ||
        stats_.allocated_frames.load(std::memory_order_relaxed) + frames <= limit) {
      return true;
    }
    ReclaimCallback callback;
    {
      debug::MutexGuard guard(mutex_, g_pool_lock_class);
      callback = reclaim_callback_;
    }
    if (!callback) {
      return false;
    }
    uint64_t freed = callback(frames + 64);  // Batch a little slack to avoid thrash.
    if (freed == 0) {
      break;
    }
  }
  uint64_t limit = frame_limit_.load(std::memory_order_relaxed);
  return limit == 0 ||
         stats_.allocated_frames.load(std::memory_order_relaxed) + frames <= limit;
}

void FrameAllocator::WaitForQuota(uint64_t frames) {
  ODF_CHECK(TryWaitForQuota(frames))
      << "out of simulated memory: limit " << frame_limit() << " frames, " << frames
      << " wanted, reclaim exhausted (NOFAIL allocation)";
}

void FrameAllocator::InitAllocatedFrame(FrameId frame, uint8_t flags) {
  PageMeta& meta = MetaRef(frame);
  ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) != 0, meta, frame)
      << "double allocation";
  // Poison-check-on-alloc: a free frame must still be inert. Any stale IncRef/DecRef,
  // pt_share write, or canary clobber against this frame since it was freed aborts here,
  // at the next allocation — the earliest point the corruption is observable.
  ODF_VM_BUG_ON_PAGE(meta.refcount.load(std::memory_order_relaxed) != 0, meta, frame)
      << "frame gained references while on the free list";
  ODF_VM_BUG_ON_PAGE(meta.pt_share_count.load(std::memory_order_relaxed) != 0, meta, frame)
      << "frame gained table sharers while on the free list";
  // Backstop behind the pop-path diverts: a poisoned frame must never be handed out again.
  ODF_VM_BUG_ON_PAGE(meta.IsHwPoisoned(), meta, frame) << "allocating a hwpoisoned frame";
#if ODF_DEBUG_VM_COMPILED
  debug::internal::g_poison_checks.fetch_add(1, std::memory_order_relaxed);
  ODF_VM_BUG_ON_PAGE(meta.reserved != 0 && meta.reserved != debug::kPoisonFreed, meta, frame)
      << "free-frame canary clobbered";
  meta.reserved = debug::kPoisonAllocated;
#endif
  ODF_DCHECK((meta.flags & kPageFlagAllocated) == 0) << "double allocation of frame " << frame;
  meta.flags = static_cast<uint8_t>(flags | kPageFlagAllocated);
  meta.order = 0;
  meta.compound_head = frame;
  meta.refcount.store(1, std::memory_order_relaxed);
  meta.pt_share_count.store((flags & kPageFlagPageTable) != 0 ? 1 : 0,
                            std::memory_order_relaxed);
  stats_.allocated_frames.fetch_add(1, std::memory_order_relaxed);
  if ((flags & kPageFlagPageTable) != 0) {
    stats_.page_table_frames.fetch_add(1, std::memory_order_relaxed);
    std::byte* data = meta.data.load(std::memory_order_relaxed);
    if (data == nullptr) {
      data = new std::byte[kPageSize];
      std::memset(data, 0, kPageSize);
      stats_.materialized_bytes.fetch_add(kPageSize, std::memory_order_relaxed);
      // Release pairs with the acquire in TableEntries: a walker that can see this table
      // frame also sees the zeroed entries.
      meta.data.store(data, std::memory_order_release);
    } else {
      std::memset(data, 0, kPageSize);
    }
  }
  CountVm(VmCounter::k_frames_allocated);
}

void FrameAllocator::ReleaseFrameState(PageMeta& meta) {
  ODF_VM_BUG_ON((meta.flags & kPageFlagAllocated) == 0) << "double free";
  // At free time the counters must be spent: refcount 0 (DecRef path) or exactly 1
  // (FreeBatch's sole-owner contract); table shares 0 (dropped) or 1 (the allocation
  // reference, for tables torn down recursively).
  ODF_VM_BUG_ON(meta.refcount.load(std::memory_order_relaxed) > 1)
      << "freeing a frame that still has owners";
  ODF_VM_BUG_ON(meta.pt_share_count.load(std::memory_order_relaxed) > 1)
      << "freeing a page table that still has sharers";
  ODF_DCHECK((meta.flags & kPageFlagAllocated) != 0) << "double free";
  ODF_DCHECK(!meta.IsCompound()) << "compound frame on the order-0 free path";
  std::byte* data = meta.data.load(std::memory_order_relaxed);
  if (data != nullptr) {
#if ODF_DEBUG_VM_COMPILED
    // Poison-on-free: a stale reader racing the free observes 0xaa..aa instead of
    // plausible page contents. A stale access after the delete[] is a heap UAF — ASan's
    // department (the asan-ubsan preset).
    std::memset(data, static_cast<int>(debug::kPoisonByte), kPageSize);
    debug::internal::g_poison_writes.fetch_add(1, std::memory_order_relaxed);
#endif
    delete[] data;
    meta.data.store(nullptr, std::memory_order_relaxed);
    stats_.materialized_bytes.fetch_sub(kPageSize, std::memory_order_relaxed);
  }
  if ((meta.flags & kPageFlagPageTable) != 0) {
    stats_.page_table_frames.fetch_sub(1, std::memory_order_relaxed);
  }
  meta.flags = 0;
  meta.compound_head = kInvalidFrame;
  // Free frames are inert: zero both counters so poison-check-on-alloc (and the debug-vm
  // full sweep) can detect any mutation of a freed frame's metadata.
  meta.refcount.store(0, std::memory_order_relaxed);
  meta.pt_share_count.store(0, std::memory_order_relaxed);
#if ODF_DEBUG_VM_COMPILED
  meta.reserved = debug::kPoisonFreed;
#endif
  stats_.allocated_frames.fetch_sub(1, std::memory_order_relaxed);
  CountVm(VmCounter::k_frames_freed);
}

FrameId FrameAllocator::AllocateFromCache(uint8_t flags) {
  if (!CacheEligible()) {
    return kInvalidFrame;  // Frame limit armed: the exact, locked quota path takes over.
  }
  PerCpuCache& cache = CacheForThread(this, id_);
  for (;;) {
    if (cache.count == 0) {
      CountVm(VmCounter::k_pcp_miss);
      ODF_TRACE(pcp_miss, 0);
      {
        debug::MutexGuard guard(mutex_, g_pool_lock_class);
        for (size_t i = 0; i < PerCpuCache::kBatch; ++i) {
          cache.slots[cache.count++] = PopFreeLocked();
        }
      }
      CountVm(VmCounter::k_pcp_refill, PerCpuCache::kBatch);
      ODF_TRACE(pcp_refill, 0, static_cast<uint64_t>(PerCpuCache::kBatch));
    } else {
      CountVm(VmCounter::k_pcp_hit);
      ODF_TRACE(pcp_hit, 0);
    }
    FrameId frame = cache.slots[--cache.count];
    if (MetaRef(frame).IsHwPoisoned()) {
      // The frame was poisoned while parked in this thread's cache (the one place the
      // exclusive-MmGate offline cannot reach). Divert to quarantine and try the next.
      debug::MutexGuard guard(mutex_, g_pool_lock_class);
      QuarantineLocked(frame);
      continue;
    }
    InitAllocatedFrame(frame, flags);
    return frame;
  }
}

void FrameAllocator::FreeToCache(FrameId frame) {
  ReleaseFrameState(MetaRef(frame));
  PerCpuCache& cache = CacheForThread(this, id_);
  if (cache.count == PerCpuCache::kCapacity) {
    // Spill half the cache back to the shared pool in one lock hold.
    CountVm(VmCounter::k_pcp_drain, PerCpuCache::kBatch);
    ODF_TRACE(pcp_drain, 0, static_cast<uint64_t>(PerCpuCache::kBatch));
    debug::MutexGuard guard(mutex_, g_pool_lock_class);
    for (size_t i = 0; i < PerCpuCache::kBatch; ++i) {
      free_list_.push_back(cache.slots[--cache.count]);
    }
  }
  cache.slots[cache.count++] = frame;
}

void FrameAllocator::MarkHwPoison(FrameId frame) {
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  PageMeta& meta = MetaRef(frame);
  if (meta.IsHwPoisoned()) {
    return;  // Already retired or retiring; poison is idempotent.
  }
  meta.flags = static_cast<uint8_t>(meta.flags | kPageFlagHwPoison);
  stats_.hwpoisoned_frames.fetch_add(1, std::memory_order_relaxed);
  if ((meta.flags & kPageFlagAllocated) != 0) {
    // Allocated frame: quarantine happens when the last reference drops (FreeOneLocked).
    return;
  }
  // The frame is free. If it sits inside a 512-aligned run on the compound free list,
  // break the run now — AllocateCompoundGranted recycles runs whole and must never build
  // a huge page around a dead subframe. Frames on the order-0 free list (or parked in a
  // per-thread cache) are diverted lazily at their next pop instead; both are cheap
  // because poison events are rare.
  constexpr FrameId kCompoundFrames = 1u << kHugePageOrder;
  FrameId run = frame & ~static_cast<FrameId>(kCompoundFrames - 1);
  for (size_t i = 0; i < compound_free_list_.size(); ++i) {
    if (compound_free_list_[i] != run) {
      continue;
    }
    compound_free_list_[i] = compound_free_list_.back();
    compound_free_list_.pop_back();
    for (FrameId j = 0; j < kCompoundFrames; ++j) {
      if (run + j == frame) {
        QuarantineLocked(frame);
      } else {
        free_list_.push_back(run + j);
      }
    }
    return;
  }
}

bool FrameAllocator::IsHwPoisoned(FrameId frame) const {
  return MetaRef(frame).IsHwPoisoned();
}

void FrameAllocator::DrainCacheToPool(phys_internal::PerCpuCache& cache) {
  if (cache.count == 0) {
    return;
  }
  CountVm(VmCounter::k_pcp_drain, cache.count);
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  while (cache.count > 0) {
    free_list_.push_back(cache.slots[--cache.count]);
  }
}

FrameId FrameAllocator::Allocate(uint8_t flags) {
  FrameId frame = AllocateFromCache(flags);
  if (frame != kInvalidFrame) {
    return frame;
  }
  WaitForQuota(1);
  return AllocateGranted(flags);
}

FrameId FrameAllocator::TryAllocate(uint8_t flags) {
  FiSite site =
      (flags & kPageFlagPageTable) != 0 ? FiSite::k_page_table_alloc : FiSite::k_frame_alloc;
  // Injection is consulted before the cache: a scheduled failure fails the logical
  // allocation even when a cached frame could have served it (seed-replayable schedules).
  if (fi::ShouldInject(site)) {
    return kInvalidFrame;
  }
  FrameId frame = AllocateFromCache(flags);
  if (frame != kInvalidFrame) {
    return frame;
  }
  if (!TryWaitForQuota(1)) {
    return kInvalidFrame;
  }
  return AllocateGranted(flags);
}

FrameId FrameAllocator::AllocateGranted(uint8_t flags) {
  FrameId frame;
  {
    debug::MutexGuard guard(mutex_, g_pool_lock_class);
    frame = PopFreeLocked();
  }
  InitAllocatedFrame(frame, flags);
  return frame;
}

void FrameAllocator::AllocateBatch(uint8_t flags, std::span<FrameId> out) {
  if (out.empty()) {
    return;
  }
  if (frame_limit_.load(std::memory_order_relaxed) != 0) {
    // Under a frame limit, allocate one by one so reclaim can free earlier frames of this
    // very batch (an all-at-once quota demand could spuriously OOM).
    for (FrameId& slot : out) {
      slot = Allocate(flags);
    }
    return;
  }
  {
    debug::MutexGuard guard(mutex_, g_pool_lock_class);
    for (FrameId& slot : out) {
      slot = PopFreeLocked();
    }
  }
  for (FrameId frame : out) {
    InitAllocatedFrame(frame, flags);
  }
}

FrameId FrameAllocator::AllocateCompound(uint8_t flags) {
  WaitForQuota(1u << kHugePageOrder);
  return AllocateCompoundGranted(flags);
}

FrameId FrameAllocator::TryAllocateCompound(uint8_t flags) {
  if (fi::ShouldInject(FiSite::k_compound_alloc)) {
    return kInvalidFrame;
  }
  if (!TryWaitForQuota(1u << kHugePageOrder)) {
    return kInvalidFrame;
  }
  return AllocateCompoundGranted(flags);
}

FrameId FrameAllocator::AllocateCompoundGranted(uint8_t flags) {
  constexpr FrameId kCompoundFrames = 1u << kHugePageOrder;
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  FrameId head;
  if (!compound_free_list_.empty()) {
    head = compound_free_list_.back();
    compound_free_list_.pop_back();
  } else {
    // Grow by one chunk dedicated to compounds (like a hugetlb pool): all of its 512-aligned
    // runs go onto the compound free list, amortising the chunk-add cost over 128 compound
    // allocations instead of paying it per fault.
    ODF_CHECK(chunks_.size() < kMaxChunks)
        << "simulated physical memory exhausted (" << kMaxChunks << " chunks)";
    auto chunk = std::make_unique<PageMeta[]>(kChunkSize);
    size_t slot = chunks_.size();
    FrameId base = static_cast<FrameId>(slot << kChunkShift);
    chunk_table_[slot].store(chunk.get(), std::memory_order_release);
    chunks_.push_back(std::move(chunk));
    stats_.total_frames.fetch_add(kChunkSize, std::memory_order_relaxed);
    for (FrameId run = static_cast<FrameId>(kChunkSize); run > kCompoundFrames;
         run -= kCompoundFrames) {
      compound_free_list_.push_back(base + run - kCompoundFrames);
    }
    head = base;
    ODF_CHECK((head & (kCompoundFrames - 1)) == 0) << "compound carve misaligned";
  }
  PageMeta& head_meta = MetaRef(head);
  ODF_VM_BUG_ON_PAGE((head_meta.flags & kPageFlagAllocated) != 0, head_meta, head)
      << "double allocation of compound head";
  ODF_VM_BUG_ON_PAGE(head_meta.refcount.load(std::memory_order_relaxed) != 0, head_meta, head)
      << "compound head gained references while on the free list";
#if ODF_DEBUG_VM_COMPILED
  debug::internal::g_poison_checks.fetch_add(1, std::memory_order_relaxed);
  ODF_VM_BUG_ON_PAGE(
      head_meta.reserved != 0 && head_meta.reserved != debug::kPoisonFreed, head_meta, head)
      << "free-frame canary clobbered";
  head_meta.reserved = debug::kPoisonAllocated;
#endif
  head_meta.flags = static_cast<uint8_t>(flags | kPageFlagAllocated | kPageFlagCompoundHead);
  head_meta.order = static_cast<uint8_t>(kHugePageOrder);
  head_meta.compound_head = head;
  head_meta.refcount.store(1, std::memory_order_relaxed);
  head_meta.pt_share_count.store(0, std::memory_order_relaxed);
  for (FrameId i = 1; i < kCompoundFrames; ++i) {
    PageMeta& tail = MetaRef(head + i);
    ODF_VM_BUG_ON_PAGE(tail.refcount.load(std::memory_order_relaxed) != 0, tail, head + i)
        << "compound tail gained references while on the free list";
    tail.flags = static_cast<uint8_t>(flags | kPageFlagAllocated | kPageFlagCompoundTail);
    tail.order = 0;
    tail.compound_head = head;
    tail.refcount.store(0, std::memory_order_relaxed);
#if ODF_DEBUG_VM_COMPILED
    tail.reserved = debug::kPoisonAllocated;
#endif
  }
  stats_.allocated_frames.fetch_add(kCompoundFrames, std::memory_order_relaxed);
  CountVm(VmCounter::k_frames_allocated, kCompoundFrames);
  return head;
}

void FrameAllocator::IncRef(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, frame)
      << "IncRef on freed frame";
  ODF_VM_BUG_ON_PAGE(meta.IsCompoundTail(), meta, frame) << "IncRef on compound tail";
  uint32_t previous = meta.refcount.fetch_add(1, std::memory_order_relaxed);
  ODF_VM_BUG_ON_PAGE(previous >= debug::kRefcountSaturated, meta, frame)
      << "refcount saturation";
  (void)previous;
}

bool FrameAllocator::TryGetRef(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  // No freed-frame/tail BUG_ONs here: this is called speculatively from the lock-free read
  // path, where racing a free (and even pinning a reused frame id) is expected and handled
  // by the caller's shard-generation recheck. A zero count — frame free, mid-free, or a
  // compound tail — simply fails the pin.
  uint32_t count = meta.refcount.load(std::memory_order_relaxed);
  for (;;) {
    if (count == 0) {
      return false;
    }
    if (meta.refcount.compare_exchange_weak(count, count + 1, std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
      // Order the pin before the caller's generation recheck (see mm_locks.h).
      std::atomic_thread_fence(std::memory_order_seq_cst);
      return true;
    }
  }
}

void FrameAllocator::AddRefs(FrameId frame, uint32_t count) {
  PageMeta& meta = GetMeta(frame);
  ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, frame)
      << "AddRefs on freed frame";
  ODF_VM_BUG_ON_PAGE(meta.IsCompoundTail(), meta, frame) << "AddRefs on compound tail";
  uint32_t previous = meta.refcount.fetch_add(count, std::memory_order_relaxed);
  ODF_VM_BUG_ON_PAGE(previous + count >= debug::kRefcountSaturated, meta, frame)
      << "refcount saturation";
  (void)previous;
}

void FrameAllocator::IncPtShare(FrameId table) {
  PageMeta& meta = GetMeta(table);
  ODF_VM_BUG_ON_PAGE(!meta.IsPageTable(), meta, table)
      << "pt_share increment on non-table frame";
  ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, table)
      << "pt_share increment on freed table";
  meta.pt_share_count.fetch_add(1, std::memory_order_relaxed);
}

uint32_t FrameAllocator::DecPtShare(FrameId table) {
  PageMeta& meta = GetMeta(table);
  ODF_VM_BUG_ON_PAGE(!meta.IsPageTable(), meta, table)
      << "pt_share decrement on non-table frame";
  // acq_rel for the same reason as DecRef: the thread that drops the last share takes
  // exclusive ownership of the table and must observe every other sharer's writes.
  uint32_t previous = meta.pt_share_count.fetch_sub(1, std::memory_order_acq_rel);
  ODF_VM_BUG_ON_PAGE(previous == 0, meta, table) << "pt_share underflow";
  return previous;
}

void FrameAllocator::IncRefBatch(std::span<const FrameId> frames) {
  for (FrameId frame : frames) {
    PageMeta& meta = MetaRef(frame);
    ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, frame)
        << "IncRef on freed frame";
    ODF_DCHECK(!meta.IsCompoundTail()) << "IncRef on compound tail " << frame;
    uint32_t previous = meta.refcount.fetch_add(1, std::memory_order_relaxed);
    ODF_VM_BUG_ON_PAGE(previous >= debug::kRefcountSaturated, meta, frame)
        << "refcount saturation";
    (void)previous;
  }
}

void FrameAllocator::IncPtShareBatch(std::span<const FrameId> tables) {
  for (FrameId table : tables) {
    PageMeta& meta = MetaRef(table);
    ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, table)
        << "pt_share increment on freed table";
    ODF_DCHECK(meta.IsPageTable()) << "pt_share increment on non-table frame " << table;
    meta.pt_share_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void FrameAllocator::DecRef(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, frame)
      << "DecRef on freed frame";
  ODF_VM_BUG_ON_PAGE(meta.IsCompoundTail(), meta, frame) << "DecRef on compound tail";
  ODF_DCHECK(!meta.IsCompoundTail()) << "DecRef on compound tail " << frame;
  uint32_t previous = meta.refcount.fetch_sub(1, std::memory_order_acq_rel);
  ODF_VM_BUG_ON_PAGE(previous == 0, meta, frame) << "refcount underflow";
  ODF_DCHECK(previous != 0) << "refcount underflow on frame " << frame;
  if (previous != 1) {
    return;
  }
  // Last reference: the acq_rel RMW above ordered every other owner's accesses before this
  // point, so the frame is exclusively ours to tear down — lock-free when cacheable.
  // Poisoned frames always take the locked path: they retire to quarantine, never a cache.
  if (!meta.IsCompoundHead() && !meta.IsHwPoisoned() && CacheEligible()) {
    FreeToCache(frame);
    return;
  }
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  FreeOneLocked(frame);
}

void FrameAllocator::DecRefBatch(std::span<const FrameId> frames) {
  // Drop every reference first, collecting the frames that hit zero, then free those under
  // a single shared-pool lock acquisition (one lock round-trip per 512-entry table instead
  // of one per entry).
  std::array<FrameId, 512> dead;
  size_t dead_count = 0;
  for (FrameId frame : frames) {
    PageMeta& meta = MetaRef(frame);
    ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, frame)
        << "DecRef on freed frame";
    ODF_DCHECK(!meta.IsCompoundTail()) << "DecRef on compound tail " << frame;
    uint32_t previous = meta.refcount.fetch_sub(1, std::memory_order_acq_rel);
    ODF_VM_BUG_ON_PAGE(previous == 0, meta, frame) << "refcount underflow";
    ODF_DCHECK(previous != 0) << "refcount underflow on frame " << frame;
    if (previous == 1) {
      dead[dead_count++] = frame;
      if (dead_count == dead.size()) {
        FreeBatch(std::span<const FrameId>(dead.data(), dead_count));
        dead_count = 0;
      }
    }
  }
  if (dead_count > 0) {
    FreeBatch(std::span<const FrameId>(dead.data(), dead_count));
  }
}

void FrameAllocator::FreeBatch(std::span<const FrameId> frames) {
  if (frames.empty()) {
    return;
  }
  CountVm(VmCounter::k_batch_free, frames.size());
  ODF_TRACE(batch_free, 0, static_cast<uint64_t>(frames.size()));
  debug::MutexGuard guard(mutex_, g_pool_lock_class);
  FreeBatchLocked(frames);
}

void FrameAllocator::FreeBatchLocked(std::span<const FrameId> frames) {
  for (FrameId frame : frames) {
    FreeOneLocked(frame);
  }
}

void FrameAllocator::FreeOneLocked(FrameId frame) {
  PageMeta& meta = MetaRef(frame);
  ODF_VM_BUG_ON_PAGE((meta.flags & kPageFlagAllocated) == 0, meta, frame) << "double free";
  ODF_DCHECK((meta.flags & kPageFlagAllocated) != 0) << "double free of frame " << frame;
  if (meta.IsCompoundHead()) {
    constexpr FrameId kCompoundFrames = 1u << kHugePageOrder;
    ODF_VM_BUG_ON_PAGE(meta.refcount.load(std::memory_order_relaxed) > 1, meta, frame)
        << "freeing a compound that still has owners";
    bool any_poisoned = false;
    for (FrameId i = 0; i < kCompoundFrames; ++i) {
      if (MetaRef(frame + i).IsHwPoisoned()) {
        any_poisoned = true;
        break;
      }
    }
    if (any_poisoned) {
      // A subpage of this compound died to a memory error. The compound cannot be recycled
      // whole: quarantine the dead subframes (each keeps a private copy of its corrupted
      // 4 KiB so dumps stay inspectable) and salvage the clean ones onto the order-0 free
      // list. The 512-aligned run is forfeited — exactly like the kernel refusing to
      // rebuild a huge page around a PageHWPoison tail.
      std::byte* data = meta.data.load(std::memory_order_relaxed);
      for (FrameId i = 0; i < kCompoundFrames; ++i) {
        PageMeta& sub = MetaRef(frame + i);
        if (i != 0) {
          ODF_VM_BUG_ON_PAGE(sub.refcount.load(std::memory_order_relaxed) != 0, sub,
                             frame + i)
              << "compound tail gained its own references";
        }
        std::byte* page = nullptr;
        if (sub.IsHwPoisoned() && data != nullptr) {
          page = new std::byte[kPageSize];
          std::memcpy(page, data + (static_cast<uint64_t>(i) << kPageShift), kPageSize);
          stats_.materialized_bytes.fetch_add(kPageSize, std::memory_order_relaxed);
        }
        sub.flags = sub.IsHwPoisoned() ? kPageFlagHwPoison : 0;
        sub.order = 0;
        sub.compound_head = kInvalidFrame;
        sub.refcount.store(0, std::memory_order_relaxed);
        sub.pt_share_count.store(0, std::memory_order_relaxed);
        sub.data.store(page, std::memory_order_relaxed);
#if ODF_DEBUG_VM_COMPILED
        sub.reserved = debug::kPoisonFreed;
#endif
        if (sub.IsHwPoisoned()) {
          QuarantineLocked(frame + i);
        } else {
          free_list_.push_back(frame + i);
        }
      }
      if (data != nullptr) {
        // The poisoned subpages were copied out above; the shared 2 MiB buffer itself can
        // take the normal poison-on-free treatment before it dies.
#if ODF_DEBUG_VM_COMPILED
        std::memset(data, static_cast<int>(debug::kPoisonByte), kHugePageSize);
        debug::internal::g_poison_writes.fetch_add(1, std::memory_order_relaxed);
#endif
        delete[] data;
        stats_.materialized_bytes.fetch_sub(kHugePageSize, std::memory_order_relaxed);
      }
      stats_.allocated_frames.fetch_sub(kCompoundFrames, std::memory_order_relaxed);
      CountVm(VmCounter::k_frames_freed, kCompoundFrames);
      return;
    }
    std::byte* data = meta.data.load(std::memory_order_relaxed);
    if (data != nullptr) {
#if ODF_DEBUG_VM_COMPILED
      std::memset(data, static_cast<int>(debug::kPoisonByte), kHugePageSize);
      debug::internal::g_poison_writes.fetch_add(1, std::memory_order_relaxed);
#endif
      delete[] data;
      meta.data.store(nullptr, std::memory_order_relaxed);
      stats_.materialized_bytes.fetch_sub(kHugePageSize, std::memory_order_relaxed);
    }
    if ((meta.flags & kPageFlagPageTable) != 0) {
      stats_.page_table_frames.fetch_sub(1, std::memory_order_relaxed);
    }
    for (FrameId i = 1; i < kCompoundFrames; ++i) {
      PageMeta& tail = MetaRef(frame + i);
      ODF_VM_BUG_ON_PAGE(tail.refcount.load(std::memory_order_relaxed) != 0, tail, frame + i)
          << "compound tail gained its own references";
      tail.flags = 0;
      tail.compound_head = kInvalidFrame;
#if ODF_DEBUG_VM_COMPILED
      tail.reserved = debug::kPoisonFreed;
#endif
    }
    meta.flags = 0;
    meta.order = 0;
    meta.refcount.store(0, std::memory_order_relaxed);
    meta.pt_share_count.store(0, std::memory_order_relaxed);
#if ODF_DEBUG_VM_COMPILED
    meta.reserved = debug::kPoisonFreed;
#endif
    stats_.allocated_frames.fetch_sub(kCompoundFrames, std::memory_order_relaxed);
    compound_free_list_.push_back(frame);
    CountVm(VmCounter::k_frames_freed, kCompoundFrames);
    return;
  }
  if (meta.IsHwPoisoned()) {
    // Final free of a poisoned order-0 frame: retire to quarantine. Unlike
    // ReleaseFrameState this keeps the data buffer exactly as the error left it — the
    // poison-on-free 0xaa memset would destroy the one artifact worth inspecting in an
    // ODF_VM_BUG_ON_PAGE dump or a black-box replay log (docs/memory-failure.md).
    ODF_VM_BUG_ON_PAGE(meta.refcount.load(std::memory_order_relaxed) > 1, meta, frame)
        << "quarantining a frame that still has owners";
    if ((meta.flags & kPageFlagPageTable) != 0) {
      stats_.page_table_frames.fetch_sub(1, std::memory_order_relaxed);
    }
    meta.flags = kPageFlagHwPoison;
    meta.compound_head = kInvalidFrame;
    meta.refcount.store(0, std::memory_order_relaxed);
    meta.pt_share_count.store(0, std::memory_order_relaxed);
#if ODF_DEBUG_VM_COMPILED
    meta.reserved = debug::kPoisonFreed;
#endif
    stats_.allocated_frames.fetch_sub(1, std::memory_order_relaxed);
    CountVm(VmCounter::k_frames_freed);
    QuarantineLocked(frame);
    return;
  }
  ReleaseFrameState(meta);
  free_list_.push_back(frame);
}

std::byte* FrameAllocator::MaterializeData(FrameId frame, bool zero) {
  PageMeta& meta = GetMeta(frame);
  if (meta.IsCompoundTail()) {
    FrameId head = meta.compound_head;
    // A tail materialisation touches only part of the 2 MiB buffer; the rest must be zero.
    std::byte* base = MaterializeData(head, /*zero=*/true);
    return base + (static_cast<uint64_t>(frame - head) << kPageShift);
  }
  std::byte* data = meta.data.load(std::memory_order_acquire);
  if (data != nullptr) {
    return data;
  }
  debug::MutexGuard guard(MaterializeStripe(frame), g_materialize_lock_class);
  data = meta.data.load(std::memory_order_acquire);
  if (data == nullptr) {
    uint64_t bytes = meta.IsCompoundHead() ? kHugePageSize : kPageSize;
    auto* buffer = new std::byte[bytes];
    if (zero) {
      std::memset(buffer, 0, bytes);
    }
    stats_.materialized_bytes.fetch_add(bytes, std::memory_order_relaxed);
    meta.data.store(buffer, std::memory_order_release);
    data = buffer;
  }
  return data;
}

std::byte* FrameAllocator::PeekData(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  if (meta.IsCompoundTail()) {
    FrameId head = meta.compound_head;
    std::byte* base = PeekData(head);
    if (base == nullptr) {
      return nullptr;
    }
    return base + (static_cast<uint64_t>(frame - head) << kPageShift);
  }
  return meta.data.load(std::memory_order_acquire);
}

const std::byte* FrameAllocator::PeekData(FrameId frame) const {
  return const_cast<FrameAllocator*>(this)->PeekData(frame);
}

uint64_t* FrameAllocator::TableEntries(FrameId frame) {
  PageMeta& meta = GetMeta(frame);
  ODF_DCHECK(meta.IsPageTable()) << "frame " << frame << " is not a page table";
  return reinterpret_cast<uint64_t*>(meta.data.load(std::memory_order_acquire));
}

FrameAllocatorStats FrameAllocator::Stats() const {
  FrameAllocatorStats snapshot;
  snapshot.total_frames = stats_.total_frames.load(std::memory_order_relaxed);
  snapshot.allocated_frames = stats_.allocated_frames.load(std::memory_order_relaxed);
  snapshot.materialized_bytes = stats_.materialized_bytes.load(std::memory_order_relaxed);
  snapshot.page_table_frames = stats_.page_table_frames.load(std::memory_order_relaxed);
  snapshot.hwpoisoned_frames = stats_.hwpoisoned_frames.load(std::memory_order_relaxed);
  snapshot.quarantined_frames = stats_.quarantined_frames.load(std::memory_order_relaxed);
  return snapshot;
}

bool FrameAllocator::AllFree() const {
  return stats_.allocated_frames.load(std::memory_order_relaxed) == 0;
}

uint64_t FrameAllocator::CachedFrames() const {
  return phys_internal::CachedFrameCount(this);
}

}  // namespace odf
