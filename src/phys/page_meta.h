// Per-frame metadata: the simulator's analog of the Linux kernel's `struct page`.
//
// The paper's profiling (Fig. 3) shows that classic fork spends most of its time resolving
// compound heads and atomically incrementing per-page reference counters across the scattered
// `struct page` array. This type reproduces those costs for real: it is stored in a flat
// indexed array, refcounts are std::atomic, and compound (huge) pages are represented as a
// head + 511 tails exactly like the kernel.
//
// The paper stores the shared-PTE-table reference counter "in a union inside struct page that
// is unused for last-level page tables" (§4). We mirror that with an explicit union:
// `refcount` counts users of a data page, while page-table pages use `pt_share_count` to
// count the address spaces sharing them. A frame is never both.
#ifndef ODF_SRC_PHYS_PAGE_META_H_
#define ODF_SRC_PHYS_PAGE_META_H_

#include <atomic>
#include <cstdint>

namespace odf {

using FrameId = uint32_t;
inline constexpr FrameId kInvalidFrame = 0xffffffffu;

inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageSize = 1ULL << kPageShift;  // 4 KiB
inline constexpr uint64_t kHugePageOrder = 9;              // 512 x 4 KiB = 2 MiB
inline constexpr uint64_t kHugePageSize = kPageSize << kHugePageOrder;

// Frame state flags. Stored in one byte; mutated only under the owning subsystem's locks
// (flags are set at allocation and cleared at free, never concurrently toggled).
enum PageFlag : uint8_t {
  kPageFlagAllocated = 1u << 0,     // Frame is owned by someone (not on the free list).
  kPageFlagPageTable = 1u << 1,     // Frame holds a page table (512 x 64-bit entries).
  kPageFlagCompoundHead = 1u << 2,  // First frame of a compound (huge) page.
  kPageFlagCompoundTail = 1u << 3,  // Non-first frame of a compound page.
  kPageFlagAnon = 1u << 4,          // Backs a private anonymous mapping.
  kPageFlagFile = 1u << 5,          // Owned by the page cache (file-backed).
  kPageFlagZeroFill = 1u << 6,      // Logical content is all-zero; data_ may be null.
  // The PG_hwpoison analog: the frame took an (injected) uncorrectable memory error. Set
  // under the exclusive MmGate by src/mf via FrameAllocator::MarkHwPoison — never anywhere
  // else (scripts/odf_lint.py `hwpoison-flag`). The flag is permanent: a poisoned frame is
  // quarantined at its final free and never re-enters the allocator (docs/memory-failure.md).
  kPageFlagHwPoison = 1u << 7,
};

struct PageMeta {
  // For data pages: number of page-table entries (in *dedicated* PTE tables) plus other
  // owners (page cache) referencing this frame. Freed when it reaches zero.
  //
  // Under on-demand-fork, a shared PTE table holds ONE reference per page on behalf of all
  // its sharers; the table's pt_share_count stands in for the per-page counts (paper §3.6).
  std::atomic<uint32_t> refcount{0};

  // For page-table pages only (the union analog): number of address spaces whose PMD entries
  // reference this PTE table. 1 == dedicated; >1 == shared via on-demand-fork.
  std::atomic<uint32_t> pt_share_count{0};

  uint8_t flags = 0;
  uint8_t order = 0;  // Compound order for heads (kHugePageOrder); 0 otherwise.
  uint16_t reserved = 0;

  // For compound tails: frame id of the head. For heads/singles: the frame's own id.
  FrameId compound_head = kInvalidFrame;

  // Lazily materialised backing store (kPageSize bytes, or kHugePageSize on compound heads).
  // Null means the frame's logical content is all-zero. Page-table frames always have data.
  //
  // Atomic so concurrent faulting threads can check-then-materialise without the shared pool
  // lock: MaterializeData publishes the filled buffer with a release store and readers load
  // acquire, so whoever observes the pointer also observes the bytes behind it.
  std::atomic<std::byte*> data{nullptr};

  bool IsPageTable() const { return (flags & kPageFlagPageTable) != 0; }
  bool IsCompoundHead() const { return (flags & kPageFlagCompoundHead) != 0; }
  bool IsCompoundTail() const { return (flags & kPageFlagCompoundTail) != 0; }
  bool IsCompound() const { return (flags & (kPageFlagCompoundHead | kPageFlagCompoundTail)) != 0; }
  bool IsHwPoisoned() const { return (flags & kPageFlagHwPoison) != 0; }
};

// Resolves a frame's compound head the way the kernel's compound_head() does: tail frames
// redirect to their head. This is the first Fig. 3 hotspot — the cost is the cache miss on
// first touching the PageMeta, which happens for real here because the caller has just
// indexed into the large metadata array.
inline FrameId ResolveCompoundHead(const PageMeta& meta, FrameId frame) {
  if (meta.IsCompoundTail()) {
    return meta.compound_head;
  }
  return frame;
}

}  // namespace odf

#endif  // ODF_SRC_PHYS_PAGE_META_H_
