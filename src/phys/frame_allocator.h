// Physical frame allocator for the simulated machine.
//
// Frames are identified by dense FrameId indices into a chunked metadata array (the analog of
// the kernel's memmap/`struct page` array). Frame *data* (the 4 KiB contents) is materialised
// lazily on first write so that a 50 GB simulated mapping costs only metadata — this is the
// substitution that lets paper-scale sweeps run in a small container (see DESIGN.md).
#ifndef ODF_SRC_PHYS_FRAME_ALLOCATOR_H_
#define ODF_SRC_PHYS_FRAME_ALLOCATOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/phys/page_meta.h"

namespace odf {

// Aggregate allocator statistics, readable at any time (approximate under concurrency).
struct FrameAllocatorStats {
  uint64_t total_frames = 0;      // Frames ever created (high-water mark).
  uint64_t allocated_frames = 0;  // Currently allocated (counting each tail of a compound).
  uint64_t materialized_bytes = 0;  // Real memory held by frame data buffers.
  uint64_t page_table_frames = 0;
};

class FrameAllocator {
 public:
  FrameAllocator() = default;
  ~FrameAllocator();

  FrameAllocator(const FrameAllocator&) = delete;
  FrameAllocator& operator=(const FrameAllocator&) = delete;

  // Allocates one 4 KiB frame. `flags` should include the owner kind (anon/file/page-table).
  // Page-table frames get their data materialised and zeroed immediately (tables are always
  // real memory; they are what this library is about). The frame starts with refcount 1.
  //
  // This is the GFP_NOFAIL analog: it never consults fault injection and aborts when the
  // frame limit cannot be satisfied after reclaim. Recoverable paths use TryAllocate.
  FrameId Allocate(uint8_t flags);

  // Allocates a 2 MiB compound page (512 contiguous frames, head + tails). Returns the head.
  // The head starts with refcount 1; tails are marked and redirect to the head. NOFAIL, like
  // Allocate.
  FrameId AllocateCompound(uint8_t flags);

  // Fallible variants (paper §4 "Robustness"): return kInvalidFrame instead of aborting when
  // the frame limit cannot be satisfied after reclaim, or when fault injection (src/fi,
  // sites frame_alloc / page_table_alloc / compound_alloc) fails the call. Callers must
  // unwind cleanly on kInvalidFrame — see docs/robustness.md for the error contract.
  FrameId TryAllocate(uint8_t flags);
  FrameId TryAllocateCompound(uint8_t flags);

  // Drops one reference; frees the frame when the count hits zero. For compound heads the
  // entire compound is freed. Must not be called on tails (callers resolve the head first).
  void DecRef(FrameId frame);

  // Adds a reference. Callers on the fork path use GetMeta + explicit atomics instead so the
  // cost profile is visible at the call site; this is the convenience form.
  void IncRef(FrameId frame);

  PageMeta& GetMeta(FrameId frame);
  const PageMeta& GetMeta(FrameId frame) const;

  // Returns the frame's data buffer, materialising (and zero-filling) it if absent.
  // For compound tails, returns the interior pointer into the head's 2 MiB buffer.
  // Pass zero=false only when the caller immediately overwrites the whole buffer (COW
  // copies), saving a redundant clear.
  std::byte* MaterializeData(FrameId frame, bool zero = true);

  // Returns the data buffer or nullptr if the frame's content is still logical-zero.
  std::byte* PeekData(FrameId frame);
  const std::byte* PeekData(FrameId frame) const;

  // Entries view for page-table frames (asserts kPageFlagPageTable).
  uint64_t* TableEntries(FrameId frame);

  FrameAllocatorStats Stats() const;

  // True when every frame ever allocated has been freed — the leak check used by tests.
  bool AllFree() const;

  // --- Simulated physical-memory pressure (paper §4 "Robustness") ---

  // Caps the number of simultaneously allocated frames (the machine's RAM size). 0 (the
  // default) means unlimited. When an allocation would exceed the limit, the reclaim
  // callback runs (outside the allocator lock) until enough frames are free; if it cannot
  // make progress the allocation is a fatal OOM.
  void SetFrameLimit(uint64_t frames);
  uint64_t frame_limit() const;

  // Must free frames (swap out pages / kill a process) and return how many it freed.
  using ReclaimCallback = std::function<uint64_t(uint64_t want)>;
  void SetReclaimCallback(ReclaimCallback callback);

 private:
  static constexpr size_t kChunkShift = 16;  // 65536 frames (256 MiB simulated) per chunk.
  static constexpr size_t kChunkSize = 1ULL << kChunkShift;

  // Grows the metadata array by one chunk and pushes its frames onto the free list.
  void AddChunkLocked();
  FrameId PopFreeLocked();
  void FreeOneLocked(FrameId frame);

  PageMeta& MetaRef(FrameId frame) const;

  // Blocks (outside the lock) until `frames` more can be allocated under the limit; aborts
  // when reclaim cannot make room (the NOFAIL contract).
  void WaitForQuota(uint64_t frames);

  // Like WaitForQuota but returns false instead of aborting when reclaim is exhausted (or no
  // reclaimer is installed while over the limit).
  bool TryWaitForQuota(uint64_t frames);

  // Allocation bodies shared by the NOFAIL and Try entry points (quota already granted).
  FrameId AllocateGranted(uint8_t flags);
  FrameId AllocateCompoundGranted(uint8_t flags);

  mutable std::mutex mutex_;
  uint64_t frame_limit_ = 0;
  ReclaimCallback reclaim_callback_;
  std::vector<std::unique_ptr<PageMeta[]>> chunks_;
  std::vector<FrameId> free_list_;
  // Free list of 512-aligned compound candidates (freed compounds are recycled whole).
  std::vector<FrameId> compound_free_list_;
  FrameAllocatorStats stats_;
};

}  // namespace odf

#endif  // ODF_SRC_PHYS_FRAME_ALLOCATOR_H_
