// Physical frame allocator for the simulated machine.
//
// Frames are identified by dense FrameId indices into a chunked metadata array (the analog of
// the kernel's memmap/`struct page` array). Frame *data* (the 4 KiB contents) is materialised
// lazily on first write so that a 50 GB simulated mapping costs only metadata — this is the
// substitution that lets paper-scale sweeps run in a small container (see DESIGN.md).
//
// Concurrency model (docs/performance.md): order-0 allocation and free are served from
// per-thread frame caches (src/phys/per_cpu_cache.h, the pcplist analog) and touch the
// shared-pool mutex only to refill or spill a batch of frames. Refcount/free traffic on the
// fork and teardown paths goes through the batch APIs below so a 512-entry table costs one
// lock round-trip instead of 512. Statistics are relaxed atomics, so `Stats()` is race-free
// while caches run uncoordinated.
#ifndef ODF_SRC_PHYS_FRAME_ALLOCATOR_H_
#define ODF_SRC_PHYS_FRAME_ALLOCATOR_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/phys/page_meta.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace odf {

namespace phys_internal {
struct PerCpuCache;
}  // namespace phys_internal

// Aggregate allocator statistics: a coherent-enough snapshot assembled from relaxed atomic
// counters, readable at any time without taking the allocator lock.
struct FrameAllocatorStats {
  uint64_t total_frames = 0;      // Frames ever created (high-water mark).
  uint64_t allocated_frames = 0;  // Currently allocated (counting each tail of a compound).
  uint64_t materialized_bytes = 0;  // Real memory held by frame data buffers.
  uint64_t page_table_frames = 0;
  uint64_t hwpoisoned_frames = 0;   // Frames carrying kPageFlagHwPoison (mapped or retired).
  uint64_t quarantined_frames = 0;  // Poisoned frames parked on the quarantine list.
};

class FrameAllocator {
 public:
  FrameAllocator();
  ~FrameAllocator();

  FrameAllocator(const FrameAllocator&) = delete;
  FrameAllocator& operator=(const FrameAllocator&) = delete;

  // Allocates one 4 KiB frame. `flags` should include the owner kind (anon/file/page-table).
  // Page-table frames get their data materialised and zeroed immediately (tables are always
  // real memory; they are what this library is about). The frame starts with refcount 1.
  //
  // This is the GFP_NOFAIL analog: it never consults fault injection and aborts when the
  // frame limit cannot be satisfied after reclaim. Recoverable paths use TryAllocate.
  //
  // While no frame limit is armed, the fast path is a per-thread cache hit that never takes
  // the shared-pool lock.
  FrameId Allocate(uint8_t flags);

  // Allocates a 2 MiB compound page (512 contiguous frames, head + tails). Returns the head.
  // The head starts with refcount 1; tails are marked and redirect to the head. NOFAIL, like
  // Allocate. Compounds always go through the shared pool (they are 512-frame events; the
  // per-thread caches hold only order-0 frames, exactly like pcplists).
  FrameId AllocateCompound(uint8_t flags);

  // Fallible variants (paper §4 "Robustness"): return kInvalidFrame instead of aborting when
  // the frame limit cannot be satisfied after reclaim, or when fault injection (src/fi,
  // sites frame_alloc / page_table_alloc / compound_alloc) fails the call. Callers must
  // unwind cleanly on kInvalidFrame — see docs/robustness.md for the error contract.
  //
  // Fault injection is consulted before the per-thread cache, so an injected failure fails
  // the logical allocation even when a cached frame could have served it (schedules stay
  // seed-replayable regardless of cache state).
  [[nodiscard]] FrameId TryAllocate(uint8_t flags);
  [[nodiscard]] FrameId TryAllocateCompound(uint8_t flags);

  // Drops one reference; frees the frame when the count hits zero. For compound heads the
  // entire compound is freed. Must not be called on tails (callers resolve the head first).
  // Order-0 frames freed while no limit is armed go to the calling thread's cache.
  void DecRef(FrameId frame);

  // Adds a reference. All refcount mutation goes through these entry points (enforced by
  // scripts/odf_lint.py rule raw-refcount) so the debug-vm underflow/saturation/freed-frame
  // checks see every transition.
  void IncRef(FrameId frame);

  // Speculative pin for the lock-free read path (the get_page_unless_zero analog): CASes
  // the refcount up only while it is observably nonzero, so a frame mid-free is never
  // resurrected. Returns false when the count was zero. Callers resolve compound heads
  // before pinning (tails keep refcount 0 and correctly fail) and MUST validate the pin
  // against the covering shard generation before trusting the frame: a pin can land on a
  // freed-and-reused frame id, which is harmless (the +1/-1 is net zero on whatever the
  // frame is now) exactly because the generation recheck rejects the stale translation.
  // Release via DecRef(frame) outside any PtEpoch read section.
  [[nodiscard]] bool TryGetRef(FrameId frame);

  // Adds `count` references at once (huge-page split: the head absorbs one reference per
  // new PTE). Checked like IncRef.
  void AddRefs(FrameId frame, uint32_t count);

  // Adds/drops one sharer on a PTE/PMD-table frame's pt_share_count (on-demand-fork table
  // sharing, §3.6). DecPtShare returns the PREVIOUS value: 1 means the caller just dropped
  // the last sharer and owns the table exclusively (the dedicate/teardown paths branch on
  // this exactly like atomic_dec_and_test).
  void IncPtShare(FrameId table);
  uint32_t DecPtShare(FrameId table);

  // --- Batched operations: one shared-pool lock round-trip per batch, not per frame ---

  // Fills `out` with freshly allocated order-0 frames. NOFAIL, like Allocate; equivalent to
  // out.size() Allocate(flags) calls but the free list is popped under a single lock hold.
  void AllocateBatch(uint8_t flags, std::span<FrameId> out);

  // Frees frames owned solely by the caller (each must have refcount exactly 1) under a
  // single lock acquisition. The bulk-teardown analog of free_pages_bulk.
  void FreeBatch(std::span<const FrameId> frames);

  // Adds one reference to each frame (callers pass resolved compound heads). One call per
  // copied PTE table keeps the fork-path cost visible at a single site.
  void IncRefBatch(std::span<const FrameId> frames);

  // Drops one reference from each frame; all frames that hit zero are freed together under
  // a single lock acquisition (counted as batch_free in vmstat).
  void DecRefBatch(std::span<const FrameId> frames);

  // Adds one sharer to each PTE/PMD-table frame's pt_share_count (fork_odf table sharing).
  void IncPtShareBatch(std::span<const FrameId> tables);

  PageMeta& GetMeta(FrameId frame);
  const PageMeta& GetMeta(FrameId frame) const;

  // Returns the frame's data buffer, materialising (and zero-filling) it if absent.
  // For compound tails, returns the interior pointer into the head's 2 MiB buffer.
  // Pass zero=false only when the caller immediately overwrites the whole buffer (COW
  // copies), saving a redundant clear.
  //
  // Materialisation synchronises on a striped lock keyed by frame id — concurrent faults on
  // different frames never serialise here, and the shared-pool lock is not involved.
  std::byte* MaterializeData(FrameId frame, bool zero = true);

  // Returns the data buffer or nullptr if the frame's content is still logical-zero.
  std::byte* PeekData(FrameId frame);
  const std::byte* PeekData(FrameId frame) const;

  // Entries view for page-table frames (asserts kPageFlagPageTable).
  uint64_t* TableEntries(FrameId frame);

  FrameAllocatorStats Stats() const;

  // True when every frame ever allocated has been freed — the leak check used by tests.
  // Frames parked in per-thread caches are free (they count toward nothing here).
  bool AllFree() const;

  // Frames currently parked in this allocator's per-thread caches. Callers must be quiescent
  // (no thread concurrently allocating/freeing); intended for tests and procfs.
  uint64_t CachedFrames() const;

  // --- Simulated physical-memory pressure (paper §4 "Robustness") ---

  // Caps the number of simultaneously allocated frames (the machine's RAM size). 0 (the
  // default) means unlimited. When an allocation would exceed the limit, the reclaim
  // callback runs (outside the allocator lock) until enough frames are free; if it cannot
  // make progress the allocation is a fatal OOM.
  //
  // Arming a limit routes every allocation and free through the locked quota path (the
  // per-thread caches stand down) so the limit is enforced exactly, not approximately.
  void SetFrameLimit(uint64_t frames);
  uint64_t frame_limit() const;

  // Must free frames (swap out pages / kill a process) and return how many it freed.
  using ReclaimCallback = std::function<uint64_t(uint64_t want)>;
  void SetReclaimCallback(ReclaimCallback callback);

  // --- Watermarks and background reclaim (src/reclaim, docs/reclaim.md) ---
  //
  // The zone-watermark analog. While a frame limit is armed, allocations compare the free
  // count against LOW on their way through the quota gate: below LOW the pressure callback
  // (kswapd's Wake) fires, and the daemon reclaims until free frames recover to HIGH. MIN
  // is advisory — the depth at which direct reclaim is expected to be doing the work.
  struct Watermarks {
    uint64_t min = 0;
    uint64_t low = 0;
    uint64_t high = 0;
  };

  // Overrides the derived defaults (SetFrameLimit sets min = frames/64 + 4, low = 2*min,
  // high = 3*min, mirroring the kernel's min_free_kbytes scaling).
  void SetWatermarks(Watermarks wm);
  Watermarks watermarks() const;

  // Frames still allocatable under the current limit (limit - allocated, saturating at 0);
  // UINT64_MAX while unlimited.
  uint64_t FreeFrames() const;

  // Cheap, non-blocking notification hook invoked (outside the allocator lock) when an
  // allocation observes free < low. Distinct from the reclaim callback: this one only
  // nudges a daemon, it must not reclaim inline or take heavy locks.
  using PressureCallback = std::function<void()>;
  void SetPressureCallback(PressureCallback callback);

  // --- Memory failure (src/mf, docs/memory-failure.md) ---

  // Marks `frame` as having suffered an uncorrectable memory error (the PageHWPoison
  // analog). Permanent: the flag is never cleared. A poisoned frame that is currently free
  // is diverted to the quarantine list (eagerly when reachable, else at its next pop); an
  // allocated one is quarantined when its last reference drops instead of re-entering the
  // free list or a per-thread cache. The sole mutator of kPageFlagHwPoison (lint rule
  // hwpoison-flag); only src/mf calls this, under the exclusive MmGate.
  void MarkHwPoison(FrameId frame);

  // True when the frame carries kPageFlagHwPoison. Callers needing a stable answer must
  // hold the exclusive MmGate (the flag is only ever set under it).
  bool IsHwPoisoned(FrameId frame) const;

  // Internal: returns `cache`'s frames to the shared free list. Called (under the cache
  // registry lock) when a thread exits with cached frames; see src/phys/per_cpu_cache.h.
  void DrainCacheToPool(phys_internal::PerCpuCache& cache);

 private:
  static constexpr size_t kChunkShift = 16;  // 65536 frames (256 MiB simulated) per chunk.
  static constexpr size_t kChunkSize = 1ULL << kChunkShift;
  // Fixed spine of chunk pointers so GetMeta never races chunk growth: slots are published
  // with a release store and read with an acquire load (the sparse-memmap-section analog).
  // 4096 chunks x 64 Ki frames x 4 KiB = 1 TiB of simulated memory, far above any sweep.
  static constexpr size_t kMaxChunks = 4096;

  struct AtomicStats {
    std::atomic<uint64_t> total_frames{0};
    std::atomic<uint64_t> allocated_frames{0};
    std::atomic<uint64_t> materialized_bytes{0};
    std::atomic<uint64_t> page_table_frames{0};
    std::atomic<uint64_t> hwpoisoned_frames{0};
    std::atomic<uint64_t> quarantined_frames{0};
  };

  // Grows the metadata array by one chunk and pushes its frames onto the free list.
  void AddChunkLocked() ODF_REQUIRES(mutex_);
  FrameId PopFreeLocked() ODF_REQUIRES(mutex_);
  void FreeOneLocked(FrameId frame) ODF_REQUIRES(mutex_);
  void FreeBatchLocked(std::span<const FrameId> frames) ODF_REQUIRES(mutex_);
  // Parks a free poisoned frame on the quarantine list (terminal; never popped again).
  void QuarantineLocked(FrameId frame) ODF_REQUIRES(mutex_);

  // Cache fast paths. AllocateFromCache returns kInvalidFrame when the cache must stand
  // down (frame limit armed); FreeToCache requires an order-0 non-compound frame whose
  // refcount already reached zero.
  FrameId AllocateFromCache(uint8_t flags);
  void FreeToCache(FrameId frame);
  bool CacheEligible() const {
    return frame_limit_.load(std::memory_order_relaxed) == 0;
  }

  // Marks `frame` allocated and initialises its metadata. Caller owns the frame exclusively
  // (just popped from the free list or a cache); no lock is required.
  void InitAllocatedFrame(FrameId frame, uint8_t flags);
  // Inverse: tears down an order-0 non-compound frame's state (drops the data buffer,
  // adjusts stats) before the id is parked in a cache or the free list.
  void ReleaseFrameState(PageMeta& meta);

  PageMeta& MetaRef(FrameId frame) const;

  // Blocks (outside the lock) until `frames` more can be allocated under the limit; aborts
  // when reclaim cannot make room (the NOFAIL contract).
  void WaitForQuota(uint64_t frames);

  // Like WaitForQuota but returns false instead of aborting when reclaim is exhausted (or no
  // reclaimer is installed while over the limit).
  [[nodiscard]] bool TryWaitForQuota(uint64_t frames);

  // Allocation bodies shared by the NOFAIL and Try entry points (quota already granted).
  FrameId AllocateGranted(uint8_t flags);
  FrameId AllocateCompoundGranted(uint8_t flags);

  // Never-reused identity for the per-thread cache table (see per_cpu_cache.h).
  const uint64_t id_;

  // Wakes the pressure callback when `want` more frames would leave free below LOW.
  void MaybeWakeReclaim(uint64_t want);

  mutable util::Mutex mutex_;
  std::atomic<uint64_t> frame_limit_{0};
  std::atomic<uint64_t> wm_min_{0};
  std::atomic<uint64_t> wm_low_{0};
  std::atomic<uint64_t> wm_high_{0};
  // Explicit SetWatermarks pins the values; otherwise SetFrameLimit re-derives them.
  bool watermarks_explicit_ ODF_GUARDED_BY(mutex_) = false;
  ReclaimCallback reclaim_callback_ ODF_GUARDED_BY(mutex_);
  PressureCallback pressure_callback_ ODF_GUARDED_BY(mutex_);
  std::atomic<bool> pressure_armed_{false};
  // Ownership; indexing goes via the spine.
  std::vector<std::unique_ptr<PageMeta[]>> chunks_ ODF_GUARDED_BY(mutex_);
  std::array<std::atomic<PageMeta*>, kMaxChunks> chunk_table_{};
  std::vector<FrameId> free_list_ ODF_GUARDED_BY(mutex_);
  // Free list of 512-aligned compound candidates (freed compounds are recycled whole).
  std::vector<FrameId> compound_free_list_ ODF_GUARDED_BY(mutex_);
  // Terminal parking lot for hwpoisoned frames: never popped, never re-entering any free
  // list. A quarantined frame keeps its data buffer (corrupted contents stay inspectable
  // in crash dumps and replay logs — the poison-on-free memset is skipped for them).
  std::vector<FrameId> quarantine_ ODF_GUARDED_BY(mutex_);
  AtomicStats stats_;
};

}  // namespace odf

#endif  // ODF_SRC_PHYS_FRAME_ALLOCATOR_H_
