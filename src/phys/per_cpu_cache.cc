#include "src/phys/per_cpu_cache.h"

#include <algorithm>
#include <vector>

#include "src/debug/lockdep.h"
#include "src/phys/frame_allocator.h"
#include "src/util/mutex.h"

namespace odf {
namespace phys_internal {
namespace {

// One class for the cache registry: it nests INSIDE the pool lock ordering (registry ->
// pool, via thread-exit drains), which lockdep records and enforces.
debug::LockClass g_registry_lock_class("phys_internal::Registry::mu");

// Global registry of live caches, keyed by allocator. Touched only on the rare paths
// (first allocation by a thread, thread exit, allocator destruction); every hot-path
// lookup is served from the thread_local table below without any lock.
struct Registry {
  util::Mutex mu;
  struct AllocatorEntry {
    const FrameAllocator* allocator = nullptr;
    std::vector<PerCpuCache*> caches;
  };
  std::vector<AllocatorEntry> allocators ODF_GUARDED_BY(mu);

  AllocatorEntry* Find(const FrameAllocator* allocator) ODF_REQUIRES(mu) {
    for (AllocatorEntry& entry : allocators) {
      if (entry.allocator == allocator) {
        return &entry;
      }
    }
    return nullptr;
  }
};

// Leaked on purpose (never destroyed): thread-exit destructors of detached threads may run
// arbitrarily late, and a function-local static reference keeps the registry valid for them.
Registry& GlobalRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

// The calling thread's caches, destroyed at thread exit: each live cache drains its frames
// back to the owning allocator's free list (pcplists are drained on CPU hot-unplug; thread
// exit is our analog).
struct ThreadCaches {
  std::vector<PerCpuCache*> entries;

  ~ThreadCaches() {
    Registry& registry = GlobalRegistry();
    debug::MutexGuard guard(registry.mu, g_registry_lock_class);
    for (PerCpuCache* cache : entries) {
      if (cache->owner != nullptr) {
        cache->owner->DrainCacheToPool(*cache);
        Registry::AllocatorEntry* entry = registry.Find(cache->owner);
        if (entry != nullptr) {
          std::erase(entry->caches, cache);
        }
      }
      delete cache;
    }
  }
};

ThreadCaches& TableForThread() {
  thread_local ThreadCaches table;
  return table;
}

}  // namespace

PerCpuCache& CacheForThread(FrameAllocator* allocator, uint64_t allocator_id) {
  ThreadCaches& table = TableForThread();
  // Hot path: small linear scan, no locks. `allocator_id` is never reused, so a stale entry
  // can never match a live allocator.
  for (PerCpuCache* cache : table.entries) {
    if (cache->allocator_id == allocator_id) {
      return *cache;
    }
  }
  auto* cache = new PerCpuCache;
  cache->allocator_id = allocator_id;
  cache->owner = allocator;
  Registry& registry = GlobalRegistry();
  debug::MutexGuard guard(registry.mu, g_registry_lock_class);
  // While here (and holding the lock that guards `owner`), drop entries orphaned by dead
  // allocators so long-lived threads don't accumulate one cache per Kernel ever created.
  std::erase_if(table.entries, [](PerCpuCache* stale) {
    if (stale->owner == nullptr) {
      delete stale;
      return true;
    }
    return false;
  });
  Registry::AllocatorEntry* entry = registry.Find(allocator);
  if (entry == nullptr) {
    registry.allocators.push_back({allocator, {}});
    entry = &registry.allocators.back();
  }
  entry->caches.push_back(cache);
  table.entries.push_back(cache);
  return *cache;
}

void RetireAllocatorCaches(FrameAllocator* allocator) {
  Registry& registry = GlobalRegistry();
  debug::MutexGuard guard(registry.mu, g_registry_lock_class);
  Registry::AllocatorEntry* entry = registry.Find(allocator);
  if (entry == nullptr) {
    return;
  }
  for (PerCpuCache* cache : entry->caches) {
    cache->owner = nullptr;  // The owning thread deletes the husk on its next lookup or exit.
  }
  std::erase_if(registry.allocators, [allocator](const Registry::AllocatorEntry& e) {
    return e.allocator == allocator;
  });
}

uint64_t CachedFrameCount(const FrameAllocator* allocator) {
  Registry& registry = GlobalRegistry();
  debug::MutexGuard guard(registry.mu, g_registry_lock_class);
  Registry::AllocatorEntry* entry = registry.Find(allocator);
  if (entry == nullptr) {
    return 0;
  }
  uint64_t total = 0;
  for (const PerCpuCache* cache : entry->caches) {
    total += cache->count;
  }
  return total;
}

}  // namespace phys_internal
}  // namespace odf
