// Per-thread frame caches: the userspace analog of the kernel's per-CPU pagesets (pcplists).
//
// Every `Allocate`/`DecRef` in the fault path used to take the single FrameAllocator mutex —
// the equivalent of contending the zone lock from every CPU. Linux sidesteps that with
// per-CPU free-page caches refilled and drained in batches; we mirror the design per thread
// (the simulator's "CPU" is a thread): order-0 allocations and frees are served from a small
// thread-local stack of free FrameIds and only touch the shared pool once per kBatch frames.
//
// Lifetime protocol (the part pcplists get for free from fixed CPU topology):
//   - Each thread owns its caches outright; nothing else reads or writes `slots`/`count`
//     while the thread lives. A cache is found via a thread_local table keyed by the owning
//     allocator's never-reused id, so a lookup never dereferences a dead allocator.
//   - A global registry mutex serialises the two rare cross-thread events: a thread exiting
//     (drains each live cache back to its allocator's free list) and an allocator being
//     destroyed (marks its caches orphaned so exiting threads skip them). Lock order is
//     registry mutex -> allocator mutex, never the reverse.
#ifndef ODF_SRC_PHYS_PER_CPU_CACHE_H_
#define ODF_SRC_PHYS_PER_CPU_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/phys/page_meta.h"

namespace odf {

class FrameAllocator;

namespace phys_internal {

struct PerCpuCache {
  // Frames moved per shared-pool lock acquisition (the pcplist `batch`). Capacity is twice
  // the batch so a thread alternating alloc/free around a refill boundary doesn't thrash.
  static constexpr size_t kBatch = 32;
  static constexpr size_t kCapacity = 2 * kBatch;

  std::array<FrameId, kCapacity> slots;
  size_t count = 0;

  // Identity of the owning allocator. `allocator_id` is globally unique and never reused;
  // `owner` is nulled (under the registry mutex) when the allocator dies before this thread.
  uint64_t allocator_id = 0;
  FrameAllocator* owner = nullptr;
};

// Returns the calling thread's cache for `allocator`, creating and registering it on first
// use. The returned cache is exclusively owned by this thread until thread exit.
PerCpuCache& CacheForThread(FrameAllocator* allocator, uint64_t allocator_id);

// Called by ~FrameAllocator: orphans every cache registered against `allocator` so exiting
// threads do not drain into freed memory. The frames inside die with the allocator.
void RetireAllocatorCaches(FrameAllocator* allocator);

// Sum of `count` across this allocator's caches. Test/introspection helper: callers must be
// quiescent (no thread concurrently allocating from this allocator).
uint64_t CachedFrameCount(const FrameAllocator* allocator);

}  // namespace phys_internal
}  // namespace odf

#endif  // ODF_SRC_PHYS_PER_CPU_CACHE_H_
