// Ablation 3 — the §4 "Huge Page Support" extension, measured. The paper argues ODF could
// support 2 MiB pages by sharing the PMD tables that describe them, but expects limited
// benefit because there are 512x fewer upper-level tables. This bench quantifies both
// halves of that claim:
//   (a) on HUGE-backed mappings: classic fork copies PMD entries (compound refcounts);
//       kOnDemandHuge shares PMD tables -> the microsecond fork returns for huge users.
//   (b) on regular 4 KiB mappings: kOnDemandHuge vs kOnDemand shows how little is left to
//       save above the last level (the paper's "not worth the complexity" call).
#include "bench/bench_common.h"

namespace odf {
namespace {

double MeanForkMs(uint64_t bytes, bool huge, ForkMode mode, int reps) {
  Kernel kernel;
  Process& parent = MakePopulatedProcess(kernel, bytes, huge);
  return Summarize(TimeForks(kernel, parent, mode, reps)).mean;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Ablation 3 — sharing PMD tables too (ForkMode::kOnDemandHuge, paper §4)",
              "huge-page users regain the microsecond fork; 4 KiB users gain little");

  std::printf("(a) 2 MiB huge-page-backed mappings\n");
  TablePrinter huge_table({"Size (GB)", "fork (ms)", "on-demand-fork (ms)",
                           "on-demand-fork-huge (ms)"});
  for (double gb : SizeSweepGb(config.max_gb)) {
    uint64_t bytes = GbToBytes(gb);
    huge_table.AddRow(
        {TablePrinter::FormatDouble(gb, 1),
         TablePrinter::FormatDouble(MeanForkMs(bytes, true, ForkMode::kClassic, config.reps), 4),
         TablePrinter::FormatDouble(MeanForkMs(bytes, true, ForkMode::kOnDemand, config.reps),
                                    4),
         TablePrinter::FormatDouble(
             MeanForkMs(bytes, true, ForkMode::kOnDemandHuge, config.reps), 4)});
  }
  huge_table.Print();
  std::printf("\n(b) regular 4 KiB mappings\n");
  TablePrinter small_table({"Size (GB)", "on-demand-fork (ms)", "on-demand-fork-huge (ms)",
                            "extra speedup"});
  for (double gb : SizeSweepGb(config.max_gb)) {
    uint64_t bytes = GbToBytes(gb);
    double odf = MeanForkMs(bytes, false, ForkMode::kOnDemand, config.reps);
    double odf_huge = MeanForkMs(bytes, false, ForkMode::kOnDemandHuge, config.reps);
    small_table.AddRow({TablePrinter::FormatDouble(gb, 1), TablePrinter::FormatDouble(odf, 4),
                        TablePrinter::FormatDouble(odf_huge, 4),
                        TablePrinter::FormatDouble(odf / odf_huge, 1) + "x"});
  }
  small_table.Print();
  WriteBenchJson("abl03_huge_odf", config, {{"huge_mappings", &huge_table}, {"small_mappings", &small_table}});
  std::printf(
      "\nReading (b): the absolute saving above the last level is tiny — both variants are\n"
      "already microseconds — which is the paper's argument for the simpler design. The\n"
      "deeper sharing matters only when PMD entries are themselves numerous leaves (a).\n");
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
