// Figure 8: TOTAL cost (fork + subsequent accesses) — time reduction of on-demand-fork over
// classic fork as a function of the fraction of memory accessed, for five read/write mixes.
// Paper shape: ~99% reduction at 0% accessed; reduction shrinks as more memory is accessed;
// more reads => larger reduction; still positive (4-8%) even at 100% accessed 0% read.
//
// The paper uses a 50 GB region and memcpy in 32 MB batches; we default to 1 GB (set
// ODF_BENCH_FIG08_GB to scale up) with the same access pattern.
#include "bench/bench_common.h"

namespace odf {
namespace {

constexpr uint64_t kBatchBytes = 32 << 20;  // The paper's 32 MB memcpy buffer.

// Forks `parent` with `mode` and sequentially accesses the first `accessed_bytes` of the
// region in the child, interleaving reads/writes at `read_percent`. Returns total seconds.
double RunOnce(uint64_t region_bytes, uint64_t accessed_bytes, int read_percent,
               ForkMode mode) {
  Kernel kernel;
  Process& parent = MakePopulatedProcess(kernel, region_bytes);
  Vaddr base = FirstVmaStart(parent);
  std::vector<std::byte> buffer(kBatchBytes);

  Stopwatch sw;
  Process& child = kernel.Fork(parent, mode);
  // Interleave read and write batches so read_percent of batches are reads (Bresenham-style
  // error diffusion gives a deterministic, evenly spread mix).
  uint64_t offset = 0;
  int accumulator = 0;
  while (offset < accessed_bytes) {
    uint64_t chunk = std::min<uint64_t>(kBatchBytes, accessed_bytes - offset);
    accumulator += read_percent;
    bool is_read = accumulator >= 100;
    if (is_read) {
      accumulator -= 100;
      ODF_CHECK(child.ReadMemory(base + offset, std::span(buffer.data(), chunk)));
    } else {
      ODF_CHECK(child.WriteMemory(base + offset, std::span(buffer.data(), chunk)));
    }
    offset += chunk;
  }
  double total = sw.ElapsedSeconds();
  kernel.Exit(child, 0);
  kernel.Wait(parent);
  return total;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  double gb = config.fast ? 0.25 : 1.0;
  if (const char* v = std::getenv("ODF_BENCH_FIG08_GB")) {
    gb = std::atof(v);
  }
  uint64_t region = GbToBytes(gb);
  PrintHeader("Fig. 8 — total time reduction of ODF vs fork, by % memory accessed and R/W mix",
              "~99% reduction at 0% accessed, shrinking with access fraction; reads reduce "
              "more than writes; still positive at 100%");
  std::printf("Region: %.2f GB (paper: 50 GB; shape preserved — see EXPERIMENTS.md)\n\n", gb);

  const int kAccessSteps[] = {0, 20, 40, 60, 80, 100};
  const int kReadMixes[] = {100, 75, 50, 25, 0};

  TablePrinter table({"Accessed", "100% read", "75% read", "50% read", "25% read", "0% read"});
  for (int accessed : kAccessSteps) {
    std::vector<std::string> row{std::to_string(accessed) + "%"};
    uint64_t accessed_bytes = region * static_cast<uint64_t>(accessed) / 100;
    for (int read_percent : kReadMixes) {
      double fork_s = RunOnce(region, accessed_bytes, read_percent, ForkMode::kClassic);
      double odf_s = RunOnce(region, accessed_bytes, read_percent, ForkMode::kOnDemand);
      double reduction = (fork_s - odf_s) / fork_s;
      row.push_back(TablePrinter::FormatPercent(reduction, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  WriteBenchJson("fig08_overall_cost", config, {{"overall_cost", &table}});
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
