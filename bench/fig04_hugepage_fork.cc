// Figure 4: classic fork time vs size when the memory is backed by 2 MiB huge pages.
// Expected shape: ~50x faster than 4 KiB pages at the same size (512x fewer leaf entries),
// still growing with size.
#include "bench/bench_common.h"

namespace odf {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Fig. 4 — fork time vs size with 2 MiB huge pages",
              "about 0.17 ms at 1 GB (vs ~6.5 ms with 4 KiB pages)");

  TablePrinter table({"Size (GB)", "Fork w/ huge pages avg (ms)", "min (ms)"});
  for (double gb : SizeSweepGb(config.max_gb)) {
    Kernel kernel;
    Process& parent = MakePopulatedProcess(kernel, GbToBytes(gb), /*huge=*/true);
    StatsSummary stats =
        Summarize(TimeForks(kernel, parent, ForkMode::kClassic, config.reps));
    table.AddRow({TablePrinter::FormatDouble(gb, 1),
                  TablePrinter::FormatDouble(stats.mean, 4),
                  TablePrinter::FormatDouble(stats.min, 4)});
  }
  table.Print();
  WriteBenchJson("fig04_hugepage_fork", config, {{"hugepage_fork", &table}});
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
