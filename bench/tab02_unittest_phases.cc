// Table 2: phase breakdown of unit testing WITHOUT shared initialization — loading the
// initial database dominates total time (paper: 99.94% init, 0.05% forking, 0.01% testing),
// which is the motivation for fork-based test snapshots.
#include "bench/bench_common.h"
#include "src/apps/minidb.h"

namespace odf {
namespace {

// The three §5.3.2-style unit tests: SELECT with row filter, conditional DELETE,
// conditional UPDATE. Run against a child's view of the database.
void RunUnitTests(Kernel& kernel, Process& child, Vaddr db_meta) {
  MiniDb db = MiniDb::Attach(kernel, child, db_meta);
  // Like the paper's tests, these are tiny relative to the dataset: indexed point
  // operations checking value conditions (SQLite's tests resolve predicates via indexes,
  // which is why they take only 0.18 ms against a 1 GB database).
  // (1) SELECT rows and filter on the payload value.
  for (int64_t key = 100; key < 110; ++key) {
    auto row = db.SelectByKey("t", key);
    ODF_CHECK(row.has_value() && row->ints.at(0) >= 0 && row->ints.at(0) < 1000);
  }
  // (2) Delete rows whose payload satisfies a condition.
  for (int64_t key = 200; key < 210; ++key) {
    auto row = db.SelectByKey("t", key);
    if (row.has_value() && row->ints.at(0) % 2 == 0) {
      ODF_CHECK(db.DeleteByKey("t", key));
    }
  }
  // (3) Update rows whose payload satisfies a condition.
  for (int64_t key = 300; key < 310; ++key) {
    auto row = db.SelectByKey("t", key);
    if (row.has_value() && row->ints.at(0) % 2 == 1) {
      ODF_CHECK(db.UpdateByKey("t", key, -1));
    }
  }
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t rows = config.fast ? 100000 : 1000000;
  if (const char* v = std::getenv("ODF_BENCH_TAB02_ROWS")) {
    rows = static_cast<uint64_t>(std::atoll(v));
  }
  PrintHeader("Table 2 — unit-test phase breakdown (init per test, classic fork)",
              "initialization 99.94% | forking 0.05% | testing 0.01%");

  int iterations = config.fast ? 1 : 3;
  RunningStats init_ms;
  RunningStats fork_ms;
  RunningStats test_ms;
  for (int i = 0; i < iterations; ++i) {
    Kernel kernel;
    Process& parent = kernel.CreateProcess();
    Stopwatch sw;
    MiniDb db = MiniDb::Create(kernel, parent, rows * 256 + (256ULL << 20));
    Rng rng(1);
    db.BulkLoadFixture("t", rows, 64, rng);
    init_ms.Add(sw.ElapsedMillis());

    sw.Restart();
    Process& child = kernel.Fork(parent, ForkMode::kClassic);
    fork_ms.Add(sw.ElapsedMillis());

    sw.Restart();
    RunUnitTests(kernel, child, db.meta_base());
    test_ms.Add(sw.ElapsedMillis());
    kernel.Exit(child, 0);
    kernel.Wait(parent);
  }

  double total = init_ms.mean() + fork_ms.mean() + test_ms.mean();
  TablePrinter table({"Phase", "Avg. time (ms)", "Relative"});
  table.AddRow({"Initialization", TablePrinter::FormatDouble(init_ms.mean(), 2),
                TablePrinter::FormatPercent(init_ms.mean() / total, 2)});
  table.AddRow({"Forking", TablePrinter::FormatDouble(fork_ms.mean(), 2),
                TablePrinter::FormatPercent(fork_ms.mean() / total, 2)});
  table.AddRow({"Testing", TablePrinter::FormatDouble(test_ms.mean(), 2),
                TablePrinter::FormatPercent(test_ms.mean() / total, 2)});
  table.AddRow({"Total", TablePrinter::FormatDouble(total, 2), "100%"});
  table.Print();
  WriteBenchJson("tab02_unittest_phases", config, {{"unittest_phases", &table}});
  std::printf("\nShape check: initialization must dominate by orders of magnitude.\n");
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
