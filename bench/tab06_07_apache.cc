// Tables 6 & 7: Apache-prefork request latency — the paper's negative result. The server
// maps only ~7 MB and forks workers once at startup, so on-demand-fork should make no
// meaningful difference to request latency (differences under the run-to-run noise).
#include "bench/bench_common.h"
#include "src/apps/httpd.h"

namespace odf {
namespace {

struct ApacheRun {
  LatencyRecorder latency;
  double startup_fork_us = 0;
};

void RunServer(ForkMode mode, uint64_t requests, ApacheRun* run) {
  Kernel kernel;
  HttpdConfig config;
  config.fork_mode = mode;
  PreforkServer server = PreforkServer::Start(kernel, config);
  run->startup_fork_us = server.startup_fork_micros();
  Rng rng(17);
  // Warm the workers (first requests pay one-time COW faults in both modes, like a fresh
  // Apache instance touching its config pages).
  for (int i = 0; i < config.worker_count * 8; ++i) {
    server.HandleRequest(rng.Next(), nullptr);
  }
  for (uint64_t i = 0; i < requests; ++i) {
    server.HandleRequest(rng.Next(), &run->latency);
  }
  server.Shutdown();
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t requests = config.fast ? 2000 : 20000;
  PrintHeader("Tables 6 & 7 — Apache prefork request latency (the no-benefit case)",
              "mean 34.3 vs 33.7 us; percentile deltas within noise — no meaningful change");

  ApacheRun classic;
  RunServer(ForkMode::kClassic, requests, &classic);
  ApacheRun odf;
  RunServer(ForkMode::kOnDemand, requests, &odf);

  StatsSummary a = classic.latency.Summary();
  StatsSummary b = odf.latency.Summary();
  TablePrinter table({"Metric", "Fork (us)", "On-demand-fork (us)", "Difference"});
  table.AddRow({"Mean", TablePrinter::FormatDouble(a.mean, 1),
                TablePrinter::FormatDouble(b.mean, 1),
                TablePrinter::FormatPercent((b.mean - a.mean) / a.mean, 2)});
  table.AddRow({"Max", TablePrinter::FormatDouble(a.max, 1),
                TablePrinter::FormatDouble(b.max, 1),
                TablePrinter::FormatPercent((b.max - a.max) / a.max, 2)});
  table.Print();
  std::printf("\n");

  TablePrinter pct_table({"Percentile", "Fork (us)", "On-demand-fork (us)", "Difference"});
  for (double p : {50.0, 75.0, 90.0, 99.0}) {
    double pa = classic.latency.PercentileValue(p);
    double pb = odf.latency.PercentileValue(p);
    char label[16];
    std::snprintf(label, sizeof(label), ">=%.0f%%", p);
    pct_table.AddRow({label, TablePrinter::FormatDouble(pa, 1),
                      TablePrinter::FormatDouble(pb, 1),
                      TablePrinter::FormatPercent((pb - pa) / pa, 2)});
  }
  pct_table.Print();
  WriteBenchJson("tab06_07_apache", config, {{"request_latency", &table}, {"percentiles", &pct_table}});
  std::printf(
      "\nStartup worker forking: fork %.1f us vs ODF %.1f us (off the request path).\n"
      "Shape check: request-latency differences should be small and of mixed sign.\n",
      classic.startup_fork_us, odf.startup_fork_us);
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
