// Figure 9b (companion experiment): post-fork COW fault throughput as the number of
// concurrently faulting threads grows. One parent with fully materialised memory forks K
// children (K = thread count); each driver thread then write-touches every page of its own
// child's mapping, so every touch is a COW fault that allocates a frame and copies 4 KiB.
// Child teardown frees all those frames again. The metric is aggregate faults/sec across
// the faulting phase only (forks and exits are untimed).
//
// This is the concurrency stressor for the per-CPU frame caches and batched free paths
// (docs/performance.md): with a single global free-list lock the fault throughput flattens
// as threads are added; with per-thread caches the alloc/free hot path stays lock-free and
// scales with available cores.
#include <thread>

#include "bench/bench_common.h"

namespace odf {
namespace {

struct FaultPoint {
  double faults_per_sec = 0;
  uint64_t faults = 0;
};

// One (mode, thread-count) data point: repeat {fork K children serially, fault over them
// from K threads concurrently, tear the children down} until the timed faulting phases have
// accumulated `seconds` of wall clock.
FaultPoint RunPoint(ForkMode mode, int threads, uint64_t bytes_per_child, double seconds) {
  Kernel kernel;
  Process& parent = MakePopulatedProcess(kernel, bytes_per_child, /*huge=*/false,
                                         /*materialize=*/true);
  Vaddr va = FirstVmaStart(parent);
  const uint64_t pages = bytes_per_child / kPageSize;

  FaultPoint point;
  double measured = 0;
  while (measured < seconds) {
    std::vector<Process*> children;
    children.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      children.push_back(&kernel.Fork(parent, mode));
    }

    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ODF_CHECK(children[static_cast<size_t>(t)]->TouchRange(va, bytes_per_child,
                                                               AccessType::kWrite));
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
    measured += sw.ElapsedSeconds();
    point.faults += pages * static_cast<uint64_t>(threads);

    for (Process* child : children) {
      kernel.Exit(*child, 0);
      kernel.Wait(parent);
    }
  }
  point.faults_per_sec = static_cast<double>(point.faults) / measured;
  kernel.Exit(parent, 0);
  ODF_CHECK(kernel.allocator().AllFree());
  return point;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t bytes_per_child = config.fast ? (8ULL << 20) : (32ULL << 20);
  double seconds_per_point = config.fast ? 0.5 : std::max(config.seconds / 8.0, 1.0);

  PrintHeader("Fig. 9b — concurrent post-fork COW fault throughput",
              "per-CPU frame caches keep the fault path lock-free as threads scale");
  std::printf("Child mapping: %llu MiB; %.2f s of faulting per data point; %u core(s)\n\n",
              static_cast<unsigned long long>(bytes_per_child >> 20), seconds_per_point,
              std::thread::hardware_concurrency());

  TablePrinter table({"Threads", "fork (faults/s)", "on-demand-fork (faults/s)",
                      "ODF/fork"});
  for (int threads : {1, 2, 4, 8}) {
    FaultPoint classic =
        RunPoint(ForkMode::kClassic, threads, bytes_per_child, seconds_per_point);
    FaultPoint odf =
        RunPoint(ForkMode::kOnDemand, threads, bytes_per_child, seconds_per_point);
    table.AddRow({std::to_string(threads),
                  TablePrinter::FormatDouble(classic.faults_per_sec, 0),
                  TablePrinter::FormatDouble(odf.faults_per_sec, 0),
                  TablePrinter::FormatDouble(odf.faults_per_sec / classic.faults_per_sec,
                                             2)});
  }
  table.Print();
  WriteBenchJson("fig09b_concurrent_faults", config, {{"concurrent_faults", &table}});
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
