// Figure 9b (companion experiment): post-fork COW fault throughput as the number of
// concurrently faulting threads grows. One parent with fully materialised memory forks K
// children (K = thread count); each driver thread then write-touches every page of its own
// child's mapping, so every touch is a COW fault that allocates a frame and copies 4 KiB.
// Child teardown frees all those frames again. The metric is aggregate faults/sec across
// the faulting phase only (forks and exits are untimed).
//
// This is the concurrency stressor for the per-CPU frame caches and batched free paths
// (docs/performance.md): with a single global free-list lock the fault throughput flattens
// as threads are added; with per-thread caches the alloc/free hot path stays lock-free and
// scales with available cores.
//
// A second sweep targets the sharded MM locks (docs/performance.md "Lock sharding & TLB
// generations"): K threads COW-fault over DISJOINT ranges of ONE shared child address
// space. Per-child faulting never contends on MM locks (each thread owns its AS); the
// same-AS sweep is the workload a single per-AS mutex would serialize completely, and the
// per-range shard table should keep near-linear.
#include <thread>

#include "bench/bench_common.h"

namespace odf {
namespace {

struct FaultPoint {
  double faults_per_sec = 0;
  uint64_t faults = 0;
};

// One (mode, thread-count) data point: repeat {fork K children serially, fault over them
// from K threads concurrently, tear the children down} until the timed faulting phases have
// accumulated `seconds` of wall clock.
FaultPoint RunPoint(ForkMode mode, int threads, uint64_t bytes_per_child, double seconds) {
  Kernel kernel;
  Process& parent = MakePopulatedProcess(kernel, bytes_per_child, /*huge=*/false,
                                         /*materialize=*/true);
  Vaddr va = FirstVmaStart(parent);
  const uint64_t pages = bytes_per_child / kPageSize;

  FaultPoint point;
  double measured = 0;
  while (measured < seconds) {
    std::vector<Process*> children;
    children.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      children.push_back(&kernel.Fork(parent, mode));
    }

    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ODF_CHECK(children[static_cast<size_t>(t)]->TouchRange(va, bytes_per_child,
                                                               AccessType::kWrite));
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
    measured += sw.ElapsedSeconds();
    point.faults += pages * static_cast<uint64_t>(threads);

    for (Process* child : children) {
      kernel.Exit(*child, 0);
      kernel.Wait(parent);
    }
  }
  point.faults_per_sec = static_cast<double>(point.faults) / measured;
  kernel.Exit(parent, 0);
  ODF_CHECK(kernel.allocator().AllFree());
  return point;
}

// One same-AS data point: fork ONE on-demand child of a populated parent, then write-fault
// it from K threads, each owning a disjoint `bytes_per_thread` slice. Slices are multiples
// of the 2 MiB shard granule (MmLockTable::ShardOf buckets by huge-page-sized chunk), so
// disjoint slices never alias a range shard and the only shared state is the per-AS BRAVO
// gate in its read (shared) mode. Per-thread work is constant, so faults/s should scale
// with K; a single whole-AS mutex would hold this flat.
FaultPoint RunSameAsPoint(int threads, uint64_t bytes_per_thread, double seconds) {
  Kernel kernel;
  uint64_t total = bytes_per_thread * static_cast<uint64_t>(threads);
  Process& parent = MakePopulatedProcess(kernel, total, /*huge=*/false,
                                         /*materialize=*/true);
  Vaddr va = FirstVmaStart(parent);
  const uint64_t pages_per_thread = bytes_per_thread / kPageSize;

  FaultPoint point;
  double measured = 0;
  while (measured < seconds) {
    Process& child = kernel.Fork(parent, ForkMode::kOnDemand);

    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Vaddr slice = va + static_cast<uint64_t>(t) * bytes_per_thread;
        ODF_CHECK(child.TouchRange(slice, bytes_per_thread, AccessType::kWrite));
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
    measured += sw.ElapsedSeconds();
    point.faults += pages_per_thread * static_cast<uint64_t>(threads);

    kernel.Exit(child, 0);
    kernel.Wait(parent);
  }
  point.faults_per_sec = static_cast<double>(point.faults) / measured;
  kernel.Exit(parent, 0);
  ODF_CHECK(kernel.allocator().AllFree());
  return point;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t bytes_per_child = config.fast ? (8ULL << 20) : (32ULL << 20);
  double seconds_per_point = config.fast ? 0.5 : std::max(config.seconds / 8.0, 1.0);

  PrintHeader("Fig. 9b — concurrent post-fork COW fault throughput",
              "per-CPU frame caches keep the fault path lock-free as threads scale");
  std::printf("Child mapping: %llu MiB; %.2f s of faulting per data point; %u core(s)\n\n",
              static_cast<unsigned long long>(bytes_per_child >> 20), seconds_per_point,
              std::thread::hardware_concurrency());

  TablePrinter table({"Threads", "fork (faults/s)", "on-demand-fork (faults/s)",
                      "ODF/fork"});
  for (int threads : {1, 2, 4, 8}) {
    FaultPoint classic =
        RunPoint(ForkMode::kClassic, threads, bytes_per_child, seconds_per_point);
    FaultPoint odf =
        RunPoint(ForkMode::kOnDemand, threads, bytes_per_child, seconds_per_point);
    table.AddRow({std::to_string(threads),
                  TablePrinter::FormatDouble(classic.faults_per_sec, 0),
                  TablePrinter::FormatDouble(odf.faults_per_sec, 0),
                  TablePrinter::FormatDouble(odf.faults_per_sec / classic.faults_per_sec,
                                             2)});
  }
  table.Print();

  // Same-AS sweep: per-thread slice is fixed (shard-granule multiples), so the faults/s
  // column is the scaling curve itself. "vs 1T" is the speedup over the single-thread
  // point — the ISSUE 8 acceptance asks for near-linear here.
  uint64_t bytes_per_thread = config.fast ? (2ULL << 20) : (8ULL << 20);
  std::printf("\nSame-AS disjoint-range COW faults (%llu MiB per thread, one shared "
              "on-demand child):\n",
              static_cast<unsigned long long>(bytes_per_thread >> 20));
  TablePrinter same_as({"Threads", "faults/s", "vs 1T"});
  double base = 0;
  for (int threads : {1, 2, 4, 8}) {
    FaultPoint point = RunSameAsPoint(threads, bytes_per_thread, seconds_per_point);
    if (threads == 1) {
      base = point.faults_per_sec;
    }
    same_as.AddRow({std::to_string(threads),
                    TablePrinter::FormatDouble(point.faults_per_sec, 0),
                    TablePrinter::FormatDouble(point.faults_per_sec / base, 2)});
  }
  same_as.Print();

  WriteBenchJson("fig09b_concurrent_faults", config,
                 {{"concurrent_faults", &table}, {"same_as_disjoint_ranges", &same_as}});
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
