// Memory-failure offline latency vs mapping fan-out (docs/memory-failure.md). A frame
// mapped into N processes must be offlined by rewriting every leaf slot that references
// it. Classic fork gives each process a private PTE table — N slots, O(N) containment.
// On-demand-fork's shared last-level tables collapse the family to ONE slot in ONE table
// (§3.6), so both hard offline (poison markers) and soft offline (migration) stay flat
// as the family grows. No paper counterpart; this extends the §4 robustness story with
// the same shared-table asymmetry the paper exploits for fork throughput.
#include "bench/bench_common.h"

#include "src/mf/memory_failure.h"

namespace odf {
namespace {

constexpr uint64_t kRegionPages = 64;
constexpr uint64_t kRegionBytes = kRegionPages * kPageSize;

struct OfflineSample {
  uint64_t rmap_locations = 0;  // Slots the offline had to find (the work factor).
  std::vector<double> hard_us;
  std::vector<double> soft_us;
};

FrameId FrameAt(Process& p, Vaddr va) {
  AddressSpace& as = p.address_space();
  Translation t = as.walker().Translate(as.pgd(), va, AccessType::kRead);
  ODF_CHECK(t.status == TranslateStatus::kOk) << "bench target page not present";
  return t.frame;
}

// One configuration: `sharers` processes (the parent plus sharers-1 children forked with
// `mode`, none of which touch the region, as in a snapshot fleet) mapping the same
// pattern region. Each rep offlines a fresh page — quarantine is permanent, so a frame
// can only be measured once.
OfflineSample RunConfiguration(uint64_t sharers, ForkMode mode, const BenchConfig& config) {
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  Vaddr region = parent.Mmap(kRegionBytes, kProtRead | kProtWrite);
  ODF_CHECK(parent.MemsetMemory(region, std::byte{0x5a}, kRegionBytes));
  std::vector<Process*> children;
  for (uint64_t i = 1; i < sharers; ++i) {
    children.push_back(&kernel.Fork(parent, mode));
  }

  OfflineSample sample;
  ODF_CHECK(static_cast<uint64_t>(config.reps) * 2 <= kRegionPages)
      << "not enough fresh pages for the rep count";
  for (int rep = 0; rep < config.reps; ++rep) {
    Vaddr hard_va = region + static_cast<uint64_t>(2 * rep) * kPageSize;
    Vaddr soft_va = region + static_cast<uint64_t>(2 * rep + 1) * kPageSize;

    FrameId hard_frame = FrameAt(parent, hard_va);
    sample.rmap_locations = kernel.rmap().LocationCount(hard_frame);
    Stopwatch hard_sw;
    mf::MfResult hard = kernel.MemoryFailure(hard_frame);
    sample.hard_us.push_back(hard_sw.ElapsedMillis() * 1000.0);
    ODF_CHECK(hard == mf::MfResult::kRecovered) << MfResultName(hard);

    FrameId soft_frame = FrameAt(parent, soft_va);
    Stopwatch soft_sw;
    mf::MfResult soft = kernel.SoftOfflinePage(soft_frame);
    sample.soft_us.push_back(soft_sw.ElapsedMillis() * 1000.0);
    ODF_CHECK(soft == mf::MfResult::kMigrated) << MfResultName(soft);
  }

  for (Process* child : children) {
    kernel.Exit(*child, 0);
    kernel.Wait(parent);
  }
  return sample;
}

const char* ModeName(ForkMode mode) {
  return mode == ForkMode::kClassic ? "classic" : "on-demand";
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Memory-failure offline latency vs mapping fan-out",
              "extension of §4 robustness: one poison rewrite per shared-table slot "
              "(docs/memory-failure.md)");
  uint64_t max_sharers = config.fast ? 64 : 1024;
  std::printf("Region: %llu pages; sharers 1..%llu; none of the children touch the "
              "region (snapshot-fleet shape)\n\n",
              static_cast<unsigned long long>(kRegionPages),
              static_cast<unsigned long long>(max_sharers));

  TablePrinter table({"Sharers", "Fork engine", "rmap locations", "hard offline (us, median)",
                      "soft offline (us, median)"});
  for (uint64_t sharers = 1; sharers <= max_sharers; sharers *= 4) {
    for (ForkMode mode : {ForkMode::kClassic, ForkMode::kOnDemand}) {
      OfflineSample sample = RunConfiguration(sharers, mode, config);
      table.AddRow({std::to_string(sharers), ModeName(mode),
                    std::to_string(sample.rmap_locations),
                    TablePrinter::FormatDouble(Percentile(sample.hard_us, 50), 2),
                    TablePrinter::FormatDouble(Percentile(sample.soft_us, 50), 2)});
    }
  }
  table.Print();
  WriteBenchJson("fig_mf_offline", config, {{"mf_offline", &table}});

  std::printf("\nThe headline: on-demand-fork keeps 'rmap locations' at 1 regardless of "
              "sharer count — containment is one slot rewrite — while classic fork's "
              "location count (and offline latency) grows with the family.\n");
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
