// Extension experiment 11 — the memory-efficiency side of on-demand-fork. The paper argues
// ODF "improves overall system efficiency" because children that touch little memory never
// build full page tables. This bench quantifies it: page-table frames and per-child
// footprint (via the procfs analog) for N live children of a large parent.
#include "bench/bench_common.h"
#include "src/proc/procfs.h"

namespace odf {
namespace {

struct FleetCost {
  uint64_t extra_table_frames = 0;  // Page-table frames added by the fleet.
  uint64_t child_pt_bytes = 0;      // One child's proportional table footprint.
  double fork_total_ms = 0;
};

FleetCost MeasureFleet(uint64_t bytes, ForkMode mode, int children) {
  Kernel kernel;
  Process& parent = MakePopulatedProcess(kernel, bytes);
  uint64_t before = kernel.allocator().Stats().page_table_frames;
  Stopwatch sw;
  std::vector<Process*> fleet;
  for (int i = 0; i < children; ++i) {
    fleet.push_back(&kernel.Fork(parent, mode));
  }
  FleetCost cost;
  cost.fork_total_ms = sw.ElapsedMillis();
  cost.extra_table_frames = kernel.allocator().Stats().page_table_frames - before;
  cost.child_pt_bytes = BuildMemoryReport(*fleet.back()).page_table_bytes;
  for (Process* child : fleet) {
    kernel.Exit(*child, 0);
  }
  return cost;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  double gb = std::min(config.max_gb, 4.0);
  uint64_t bytes = GbToBytes(gb);
  const int kChildren = config.fast ? 8 : 64;
  PrintHeader("Exp. 11 — page-table memory cost of a fork fleet (efficiency claim)",
              "ODF children share last-level tables: near-zero per-child table memory");
  std::printf("Parent: %.1f GB mapped; fleet: %d simultaneous children\n\n", gb, kChildren);

  TablePrinter table({"Mechanism", "extra PT frames (fleet)", "PT KB per child (PSS)",
                      "total fork time (ms)"});
  for (ForkMode mode : {ForkMode::kClassic, ForkMode::kOnDemand, ForkMode::kOnDemandHuge}) {
    FleetCost cost = MeasureFleet(bytes, mode, kChildren);
    table.AddRow({ForkModeName(mode), std::to_string(cost.extra_table_frames),
                  TablePrinter::FormatDouble(static_cast<double>(cost.child_pt_bytes) / 1024.0,
                                             1),
                  TablePrinter::FormatDouble(cost.fork_total_ms, 2)});
  }
  table.Print();
  WriteBenchJson("exp11_memory_overhead", config, {{"memory_overhead", &table}});
  std::printf(
      "\nReading: classic fork duplicates every PTE table per child (512 frames per GB per\n"
      "child); on-demand-fork adds only the upper-level skeleton, and the §4 extension\n"
      "barely more than a PGD. Deferred tables are also deferred memory.\n");
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
