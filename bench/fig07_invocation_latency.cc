// Figure 7 — the headline result: fork vs fork-with-huge-pages vs on-demand-fork invocation
// latency across the memory sweep. Paper: ODF is 65x faster than fork at 1 GB, 270x at
// 50 GB, and slightly faster than huge-page fork throughout.
#include "bench/bench_common.h"

namespace odf {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Fig. 7 — invocation latency: fork vs fork+huge vs on-demand-fork",
              "ODF 0.10 ms at 1 GB (65x over fork) and 0.94 ms at 50 GB (270x)");

  TablePrinter table({"Size (GB)", "fork (ms)", "fork w/ huge (ms)", "on-demand-fork (ms)",
                      "ODF speedup vs fork"});
  for (double gb : SizeSweepGb(config.max_gb)) {
    uint64_t bytes = GbToBytes(gb);
    double classic_ms;
    double huge_ms;
    double odf_ms;
    {
      Kernel kernel;
      Process& parent = MakePopulatedProcess(kernel, bytes);
      classic_ms = Summarize(TimeForks(kernel, parent, ForkMode::kClassic, config.reps)).mean;
    }
    {
      Kernel kernel;
      Process& parent = MakePopulatedProcess(kernel, bytes, /*huge=*/true);
      huge_ms = Summarize(TimeForks(kernel, parent, ForkMode::kClassic, config.reps)).mean;
    }
    {
      Kernel kernel;
      Process& parent = MakePopulatedProcess(kernel, bytes);
      odf_ms = Summarize(TimeForks(kernel, parent, ForkMode::kOnDemand, config.reps)).mean;
    }
    table.AddRow({TablePrinter::FormatDouble(gb, 1), TablePrinter::FormatDouble(classic_ms, 4),
                  TablePrinter::FormatDouble(huge_ms, 4),
                  TablePrinter::FormatDouble(odf_ms, 4),
                  TablePrinter::FormatDouble(classic_ms / odf_ms, 1) + "x"});
  }
  table.Print();
  WriteBenchJson("fig07_invocation_latency", config, {{"invocation_latency", &table}});
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
