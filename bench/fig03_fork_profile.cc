// Figure 3: where does classic fork spend its time? The paper's perf profile of
// copy_one_pte() attributes ~63% to compound_head() (the first cache-missing touch of
// struct page) and ~29% to the atomic page_ref_inc(). The instrumented fork path times the
// same three sub-operations in batched passes per PTE table.
#include "bench/bench_common.h"

namespace odf {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  double gb = std::min(config.max_gb, 8.0);
  PrintHeader("Fig. 3 — classic fork cost attribution (copy_one_pte analog)",
              "compound_head (~63%) and page_ref_inc (~29%) dominate; table walk is minor");

  Kernel kernel;
  Process& parent = MakePopulatedProcess(kernel, GbToBytes(gb));

  ForkProfile profile;
  for (int r = 0; r < config.reps; ++r) {
    Process& child = kernel.Fork(parent, ForkMode::kClassic, &profile);
    kernel.Exit(child, 0);
    kernel.Wait(parent);
  }

  double attributed = static_cast<double>(profile.AttributedNs());
  auto pct = [&](uint64_t ns) {
    return TablePrinter::FormatPercent(static_cast<double>(ns) / attributed, 1);
  };
  std::printf("Mapped: %.1f GB, %llu PTE entries copied across %d forks\n\n", gb,
              static_cast<unsigned long long>(profile.pte_entries_copied), config.reps);

  TablePrinter table({"Phase (kernel analog)", "Time (ms)", "Share"});
  table.AddRow({"page metadata lookup + compound_head()",
                TablePrinter::FormatDouble(static_cast<double>(profile.meta_resolve_ns) / 1e6, 2),
                pct(profile.meta_resolve_ns)});
  table.AddRow({"page_ref_inc() (atomic refcount)",
                TablePrinter::FormatDouble(static_cast<double>(profile.refcount_ns) / 1e6, 2),
                pct(profile.refcount_ns)});
  table.AddRow({"PTE entry write-protect + copy",
                TablePrinter::FormatDouble(static_cast<double>(profile.entry_copy_ns) / 1e6, 2),
                pct(profile.entry_copy_ns)});
  table.AddRow({"child PTE table allocation",
                TablePrinter::FormatDouble(static_cast<double>(profile.table_alloc_ns) / 1e6, 2),
                pct(profile.table_alloc_ns)});
  table.Print();
  WriteBenchJson("fig03_fork_profile", config, {{"fork_profile", &table}});
  std::printf(
      "\nShape check: metadata + refcount passes should dominate (paper: ~92%% combined).\n");
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
