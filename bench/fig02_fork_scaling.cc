// Figure 2: classic fork execution time vs allocated memory size, sequential and with 3
// concurrent benchmark instances. Expected shape: time grows linearly with size; concurrent
// forks are slower per call (cache-line contention on page metadata; on a 1-core container
// the concurrent series additionally reflects time-slicing — see EXPERIMENTS.md).
#include <thread>

#include "bench/bench_common.h"
#include "src/util/mutex.h"

namespace odf {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Fig. 2 — fork time vs allocated memory",
              "fork latency grows linearly; >1ms already at ~176MB; concurrency degrades it");

  TablePrinter table({"Size (GB)", "Sequential avg (ms)", "Sequential min (ms)",
                      "Concurrent 3x avg (ms)", "Concurrent 3x min (ms)"});
  for (double gb : SizeSweepGb(config.max_gb)) {
    uint64_t bytes = GbToBytes(gb);

    // Sequential.
    Kernel kernel;
    Process& parent = MakePopulatedProcess(kernel, bytes);
    StatsSummary seq = Summarize(TimeForks(kernel, parent, ForkMode::kClassic, config.reps));

    // Concurrent: 3 instances, each forking its own process (the paper's setup).
    RunningStats concurrent;
    {
      Kernel shared_kernel;
      Process* parents[3];
      for (auto*& p : parents) {
        p = &MakePopulatedProcess(shared_kernel, bytes);
      }
      std::vector<std::thread> threads;
      odf::util::Mutex merge_mutex;
      for (auto* p : parents) {
        threads.emplace_back([&, p] {
          std::vector<double> times =
              TimeForks(shared_kernel, *p, ForkMode::kClassic, config.reps);
          odf::util::MutexLock guard(merge_mutex);
          for (double t : times) {
            concurrent.Add(t);
          }
        });
      }
      for (auto& t : threads) {
        t.join();
      }
    }

    table.AddRow({TablePrinter::FormatDouble(gb, 1), TablePrinter::FormatDouble(seq.mean, 3),
                  TablePrinter::FormatDouble(seq.min, 3),
                  TablePrinter::FormatDouble(concurrent.mean(), 3),
                  TablePrinter::FormatDouble(concurrent.min(), 3)});
  }
  table.Print();
  WriteBenchJson("fig02_fork_scaling", config, {{"fork_scaling", &table}});
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
