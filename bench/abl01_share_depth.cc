// Ablation 1 — why share only the LAST level? (paper §3.1: "we do not expect significant
// performance gains for most use cases to justify a more complex design")
//
// On-demand-fork still copies the upper three levels eagerly. This ablation measures, at
// each size, how much of the ODF invocation is spent copying upper levels versus sharing
// leaf tables. If the upper-level share is small in absolute terms, extending sharing to
// PMD/PUD tables could at best save that remainder — quantifying the paper's design call.
#include "bench/bench_common.h"

namespace odf {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Ablation 1 — cost headroom of sharing upper page-table levels",
              "paper §3.1 design choice: last-level-only sharing is enough");

  TablePrinter table({"Size (GB)", "ODF total (ms)", "upper-level copy+share (ms)",
                      "leaf tables shared", "upper tables copied"});
  for (double gb : SizeSweepGb(config.max_gb)) {
    Kernel kernel;
    Process& parent = MakePopulatedProcess(kernel, GbToBytes(gb));

    ForkProfile profile;
    RunningStats total_ms;
    for (int r = 0; r < config.reps; ++r) {
      Stopwatch sw;
      Process& child = kernel.Fork(parent, ForkMode::kOnDemand, &profile);
      total_ms.Add(sw.ElapsedMillis());
      kernel.Exit(child, 0);
      kernel.Wait(parent);
    }
    double upper_ms = static_cast<double>(profile.upper_level_ns) / 1e6 /
                      static_cast<double>(config.reps);
    uint64_t leaf_tables = profile.pte_tables_visited / static_cast<uint64_t>(config.reps);
    // Upper tables = PMD + PUD + PGD tables the child needed (every 1 GiB of leaves needs
    // one PMD table; PUD/PGD are 1-2 tables at these sizes).
    uint64_t upper_tables = (leaf_tables + kEntriesPerTable - 1) / kEntriesPerTable + 2;
    table.AddRow({TablePrinter::FormatDouble(gb, 1),
                  TablePrinter::FormatDouble(total_ms.mean(), 4),
                  TablePrinter::FormatDouble(upper_ms, 4), std::to_string(leaf_tables),
                  std::to_string(upper_tables)});
  }
  table.Print();
  WriteBenchJson("abl01_share_depth", config, {{"share_depth", &table}});
  std::printf(
      "\nReading: the entire ODF invocation IS the upper-level work (leaf sharing is one\n"
      "refcount+PMD write per 2 MiB, inside the same walk). Sharing PMD tables too could\n"
      "only shave the per-leaf-entry loop, a ~512x smaller term than classic fork already\n"
      "eliminated — supporting the paper's choice to keep the design simple.\n");
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
