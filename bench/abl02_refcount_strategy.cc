// Ablation 2 (google-benchmark) — micro-costs behind the Fig. 3 profile: what exactly makes
// classic fork's per-PTE work expensive?
//   - atomic vs plain refcount increments over a large scattered metadata array (the lock
//     prefix the paper blames for poor multicore scalability),
//   - sequential vs random metadata touch order (the compound_head cache-miss cost),
//   - the full fused per-entry fork step for calibration.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/phys/page_meta.h"
#include "src/util/rng.h"

namespace odf {
namespace {

constexpr size_t kFrames = 1 << 20;  // 4 GiB worth of page metadata.

std::vector<PageMeta>& MetaArray() {
  static auto* metas = new std::vector<PageMeta>(kFrames);
  return *metas;
}

std::vector<uint32_t> MakeOrder(bool random) {
  std::vector<uint32_t> order(kFrames);
  for (uint32_t i = 0; i < kFrames; ++i) {
    order[i] = i;
  }
  if (random) {
    Rng rng(1);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
  }
  return order;
}

void BM_RefcountAtomic(benchmark::State& state) {
  auto& metas = MetaArray();
  auto order = MakeOrder(state.range(0) != 0);
  for (auto _ : state) {
    for (uint32_t index : order) {
      // odf-lint: allow(raw-refcount) — the raw atomic op is the measured subject.
      metas[index].refcount.fetch_add(1, std::memory_order_relaxed);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames));
}
BENCHMARK(BM_RefcountAtomic)->Arg(0)->Arg(1)->ArgNames({"random_order"});

void BM_RefcountPlain(benchmark::State& state) {
  auto& metas = MetaArray();
  auto order = MakeOrder(state.range(0) != 0);
  for (auto _ : state) {
    for (uint32_t index : order) {
      // Non-atomic increment: what fork could do if pages were never shared across CPUs.
      auto value = metas[index].refcount.load(std::memory_order_relaxed);
      // odf-lint: allow(raw-refcount) — the raw atomic op is the measured subject.
      metas[index].refcount.store(value + 1, std::memory_order_relaxed);
      benchmark::DoNotOptimize(value);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames));
}
BENCHMARK(BM_RefcountPlain)->Arg(0)->Arg(1)->ArgNames({"random_order"});

void BM_CompoundHeadResolve(benchmark::State& state) {
  auto& metas = MetaArray();
  auto order = MakeOrder(/*random=*/true);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (uint32_t index : order) {
      sum += ResolveCompoundHead(metas[index], index);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames));
}
BENCHMARK(BM_CompoundHeadResolve);

// The full fused classic-fork per-entry step (lookup + compound resolve + atomic inc +
// entry copy), for calibrating how the pieces compose.
void BM_FusedForkStep(benchmark::State& state) {
  auto& metas = MetaArray();
  auto order = MakeOrder(/*random=*/false);
  std::vector<uint64_t> src(kFrames);
  std::vector<uint64_t> dst(kFrames);
  for (uint32_t i = 0; i < kFrames; ++i) {
    src[i] = (static_cast<uint64_t>(order[i]) << 12) | 0x67;
  }
  for (auto _ : state) {
    for (uint32_t i = 0; i < kFrames; ++i) {
      uint64_t entry = src[i];
      uint32_t frame = static_cast<uint32_t>(entry >> 12);
      PageMeta& meta = metas[frame];
      uint32_t head = ResolveCompoundHead(meta, frame);
      // odf-lint: allow(raw-refcount) — the raw atomic op is the measured subject.
      metas[head].refcount.fetch_add(1, std::memory_order_relaxed);
      dst[i] = entry & ~0x2ULL;  // Write-protect + copy.
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames));
}
BENCHMARK(BM_FusedForkStep);

}  // namespace
}  // namespace odf

BENCHMARK_MAIN();
