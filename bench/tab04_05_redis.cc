// Tables 4 & 5: Redis-style snapshotting under load.
//
// Table 4 — client request latency percentiles while the store periodically snapshots
// (snapshot every 10000 changed keys). Paper: p50 barely changes, tail collapses (p99.99:
// 16.255 ms -> 5.535 ms, -65.95%) because requests no longer queue behind a long fork.
//
// Table 5 — the time the server is blocked in fork per snapshot. Paper: 7.40 ms -> 0.12 ms
// (-98.38%), with a much smaller standard deviation.
//
// Like real Redis, the child does the serialization; the parent is only blocked for the
// fork call. On this 1-core simulator the child's I/O is run off the latency clock to model
// the parallelism (see EXPERIMENTS.md).
#include "bench/bench_common.h"
#include "src/apps/kvstore.h"
#include "src/util/latency_recorder.h"

namespace odf {
namespace {

struct RedisRun {
  LatencyRecorder latency;           // Per-request latency (us).
  RunningStats fork_ms;              // Per-snapshot fork blocking time.
  uint64_t requests = 0;
  uint64_t snapshots = 0;
};

void RunWorkload(ForkMode mode, uint64_t keys, uint64_t value_size, double seconds,
                 RedisRun* out) {
  Kernel kernel;
  Process& server = kernel.CreateProcess();
  uint64_t heap = keys * (value_size + 128) + (512ULL << 20);
  KvStore store = KvStore::Create(kernel, server, heap);
  Rng rng(3);
  store.FillSequential(keys, value_size, rng);

  const uint64_t kSnapshotEvery = 10000;  // Redis default: 10000 changed keys.
  uint64_t changed_since_snapshot = 0;
  std::string value(value_size, 'v');

  Stopwatch run_timer;
  while (run_timer.ElapsedSeconds() < seconds) {
    uint64_t key_index = rng.NextBelow(keys);
    std::string key = "key:" + std::to_string(key_index);
    Stopwatch op_timer;
    if (rng.NextBool(0.5)) {
      value[0] = static_cast<char>(rng.Next());
      store.Set(key, value);
      ++changed_since_snapshot;
    } else {
      store.Get(key);
    }
    bool snapshot_now = changed_since_snapshot >= kSnapshotEvery;
    if (snapshot_now) {
      // The server blocks in fork; the request that triggered the snapshot eats the cost.
      Stopwatch fork_timer;
      Process& child = kernel.Fork(server, mode);
      double blocked_ms = fork_timer.ElapsedMillis();
      out->fork_ms.Add(blocked_ms);
      out->latency.Record(op_timer.ElapsedMicros());
      ++out->snapshots;
      changed_since_snapshot = 0;
      // Child-side serialization happens "in parallel" in real Redis: off the clock here.
      KvStore view = KvStore::Attach(kernel, child, store.meta_base());
      view.SaveSnapshot("/dump.rdb");
      kernel.Exit(child, 0);
      kernel.Wait(server);
    } else {
      out->latency.Record(op_timer.ElapsedMicros());
    }
    ++out->requests;
  }
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t keys = config.fast ? 50000 : 500000;
  uint64_t value_size = 1024;  // ~0.5-1 GB dataset at the default key count.
  if (const char* v = std::getenv("ODF_BENCH_TAB04_KEYS")) {
    keys = static_cast<uint64_t>(std::atoll(v));
  }
  PrintHeader("Tables 4 & 5 — Redis-style snapshot-under-load latency",
              "tail latency: p99.99 -65.95%; fork blocking time: 7.40 ms -> 0.12 ms");
  std::printf("Dataset: %llu keys x %llu B values; snapshot every 10000 changed keys\n\n",
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(value_size));

  RedisRun classic;
  RunWorkload(ForkMode::kClassic, keys, value_size, config.seconds, &classic);
  RedisRun odf;
  RunWorkload(ForkMode::kOnDemand, keys, value_size, config.seconds, &odf);

  TablePrinter table({"Percentile", "Fork (us)", "On-demand-fork (us)", "Reduction"});
  for (double p : LatencyRecorder::PaperPercentiles()) {
    double a = classic.latency.PercentileValue(p);
    double b = odf.latency.PercentileValue(p);
    char label[32];
    std::snprintf(label, sizeof(label), ">=%.4g%%", p);
    table.AddRow({label, TablePrinter::FormatDouble(a, 1), TablePrinter::FormatDouble(b, 1),
                  TablePrinter::FormatPercent((a - b) / a, 2)});
  }
  double max_a = classic.latency.Summary().max;
  double max_b = odf.latency.Summary().max;
  table.AddRow({"max", TablePrinter::FormatDouble(max_a, 1),
                TablePrinter::FormatDouble(max_b, 1),
                TablePrinter::FormatPercent((max_a - max_b) / max_a, 2)});
  table.Print();
  std::printf("(requests: fork=%llu, odf=%llu; snapshots: %llu / %llu)\n\n",
              static_cast<unsigned long long>(classic.requests),
              static_cast<unsigned long long>(odf.requests),
              static_cast<unsigned long long>(classic.snapshots),
              static_cast<unsigned long long>(odf.snapshots));

  TablePrinter fork_table({"Type", "Fork (ms)", "On-demand-fork (ms)", "Reduction"});
  fork_table.AddRow({"Mean", TablePrinter::FormatDouble(classic.fork_ms.mean(), 3),
                     TablePrinter::FormatDouble(odf.fork_ms.mean(), 3),
                     TablePrinter::FormatPercent(
                         (classic.fork_ms.mean() - odf.fork_ms.mean()) / classic.fork_ms.mean(),
                         2)});
  fork_table.AddRow({"Std. Dev.", TablePrinter::FormatDouble(classic.fork_ms.stddev(), 3),
                     TablePrinter::FormatDouble(odf.fork_ms.stddev(), 3), "-"});
  fork_table.Print();
  WriteBenchJson("tab04_05_redis", config, {{"request_latency", &table}, {"fork_blocking", &fork_table}});
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
