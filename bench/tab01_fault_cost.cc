// Table 1: worst-case page-fault handling cost after each fork flavour. The child writes one
// byte to the middle of a 1 GB region, which is the first access to its 2 MiB chunk:
//   fork            -> COW one 4 KiB page                       (paper: 0.0023 ms)
//   fork w/ huge    -> COW one 2 MiB page                       (paper: 0.1984 ms, ~86x)
//   on-demand-fork  -> copy the shared PTE table + COW the page (paper: 0.0122 ms, ~5.3x)
// The orderings (fork < ODF << huge) are the shape under test.
#include "bench/bench_common.h"

namespace odf {
namespace {

double MeasureFaultMs(ForkMode mode, bool huge, int reps) {
  RunningStats stats;
  for (int r = -1; r < reps; ++r) {  // r == -1 is an untimed warmup iteration.
    Kernel kernel;
    uint64_t bytes = GbToBytes(1.0);
    // Materialise the data so COW copies move real bytes, as in the paper (memory is
    // initialised before measurement).
    Process& parent = MakePopulatedProcess(kernel, bytes, huge, /*materialize=*/true);
    Vaddr middle = FirstVmaStart(parent) + bytes / 2;

    Process& child = kernel.Fork(parent, mode);
    std::byte value{0xff};
    Stopwatch sw;
    ODF_CHECK(child.WriteMemory(middle, std::span(&value, 1)));
    if (r >= 0) {
      stats.Add(sw.ElapsedMillis());
    }
    kernel.Exit(child, 0);
    kernel.Wait(parent);
  }
  return stats.mean();
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  int reps = config.fast ? 3 : 10;  // The paper averages 10 runs.
  PrintHeader("Table 1 — worst-case page-fault handling cost",
              "fork 0.0023 ms | fork w/ huge 0.1984 ms | on-demand-fork 0.0122 ms");

  double classic = MeasureFaultMs(ForkMode::kClassic, false, reps);
  double huge = MeasureFaultMs(ForkMode::kClassic, true, reps);
  double odf = MeasureFaultMs(ForkMode::kOnDemand, false, reps);

  TablePrinter table({"Type", "Avg. time (ms)", "vs fork"});
  table.AddRow({"Fork", TablePrinter::FormatDouble(classic, 4), "1.0x"});
  table.AddRow({"Fork w/ huge pages", TablePrinter::FormatDouble(huge, 4),
                TablePrinter::FormatDouble(huge / classic, 1) + "x"});
  table.AddRow({"On-demand-fork", TablePrinter::FormatDouble(odf, 4),
                TablePrinter::FormatDouble(odf / classic, 1) + "x"});
  table.Print();
  WriteBenchJson("tab01_fault_cost", config, {{"fault_cost", &table}});
  std::printf("\nShape check: fork < on-demand-fork << fork w/ huge pages; ODF should be\n"
              "several times fork (table copy) and ~an order of magnitude under huge pages.\n");
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
