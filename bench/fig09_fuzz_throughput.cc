// Figure 9: AFL-style fuzzing throughput on the database target with a large pre-loaded
// dataset, fork vs on-demand-fork. Paper: 63 execs/s with fork vs 206 execs/s with ODF
// (2.26x). The fork-server forks the initialized parent once per input.
#include "bench/bench_common.h"
#include "src/apps/fuzzer.h"

namespace odf {
namespace {

struct ThroughputSeries {
  std::vector<double> per_bucket;  // execs/s per time bucket.
  FuzzerStats stats;
};

ThroughputSeries RunCampaign(ForkMode mode, uint64_t rows, double seconds) {
  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  // Heap sized for the dataset (~170 B/row incl. index and segment overhead) plus slack.
  uint64_t heap = rows * 256 + (256ULL << 20);
  MiniDb db = MiniDb::Create(kernel, parent, heap);
  Rng rng(7);
  db.BulkLoadFixture("t", rows, 64, rng);

  FuzzerConfig config;
  config.fork_mode = mode;
  ForkServerFuzzer fuzzer(kernel, parent, MakeMiniDbShellTarget(kernel, "t", db.meta_base()),
                          config, MiniDbSeedCorpus());

  ThroughputSeries series;
  const double kBucketSeconds = seconds / 5.0;
  Stopwatch total;
  for (int bucket = 0; bucket < 5; ++bucket) {
    uint64_t execs_before = fuzzer.stats().executions;
    Stopwatch bucket_timer;
    while (bucket_timer.ElapsedSeconds() < kBucketSeconds) {
      fuzzer.RunOne();
    }
    series.per_bucket.push_back(
        static_cast<double>(fuzzer.stats().executions - execs_before) /
        bucket_timer.ElapsedSeconds());
  }
  series.stats = fuzzer.stats();
  series.stats.elapsed_seconds = total.ElapsedSeconds();
  return series;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t rows = config.fast ? 100000 : 1500000;  // ~1.5M rows ~= a few hundred MB in-sim.
  if (const char* v = std::getenv("ODF_BENCH_FIG09_ROWS")) {
    rows = static_cast<uint64_t>(std::atoll(v));
  }
  PrintHeader("Fig. 9 — fuzzing throughput on the DB target (fork server per input)",
              "63 execs/s (fork) vs 206 execs/s (on-demand-fork): 2.26x");
  std::printf("Dataset: %llu rows pre-loaded before the campaign\n\n",
              static_cast<unsigned long long>(rows));

  ThroughputSeries classic = RunCampaign(ForkMode::kClassic, rows, config.seconds);
  ThroughputSeries odf = RunCampaign(ForkMode::kOnDemand, rows, config.seconds);

  TablePrinter table({"Time bucket", "fork (execs/s)", "on-demand-fork (execs/s)"});
  for (size_t i = 0; i < classic.per_bucket.size(); ++i) {
    table.AddRow({"t" + std::to_string(i),
                  TablePrinter::FormatDouble(classic.per_bucket[i], 1),
                  TablePrinter::FormatDouble(odf.per_bucket[i], 1)});
  }
  double classic_avg = static_cast<double>(classic.stats.executions) /
                       classic.stats.elapsed_seconds;
  double odf_avg = static_cast<double>(odf.stats.executions) / odf.stats.elapsed_seconds;
  table.AddRow({"AVERAGE", TablePrinter::FormatDouble(classic_avg, 1),
                TablePrinter::FormatDouble(odf_avg, 1)});
  table.Print();
  WriteBenchJson("fig09_fuzz_throughput", config, {{"fuzz_throughput", &table}});
  std::printf("\nThroughput ratio (ODF/fork): %.2fx (paper: 2.26x)\n", odf_avg / classic_avg);
  std::printf("Coverage found: fork=%llu edges, odf=%llu edges\n",
              static_cast<unsigned long long>(classic.stats.covered_edges),
              static_cast<unsigned long long>(odf.stats.covered_edges));
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
