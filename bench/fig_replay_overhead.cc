// Flight-recorder overhead (docs/replay.md): the Fig. 2 fork-latency sweep and the Fig. 9b
// single-thread COW fault loop, each run with the recorder idle (compiled in but off — the
// state every other bench runs in, indistinguishable from compiled-out within noise: one
// relaxed load + predicted branch per op), in black-box mode, in full mode, and in full
// mode with forced tracing. The acceptance bar is <3% on the fork median and the faults/s
// rate for the default (trace-off) recording modes; the `full+trace` row prices the
// annotated event stream, which is dominated by the tracepoints themselves, not the
// recorder. The compiled-out build (-DODF_REPLAY=OFF, ci/check.sh replay-off gate) removes
// even the idle cost.
#include <memory>

#include "bench/bench_common.h"
#include "src/replay/recorder.h"

namespace odf {
namespace {

const char* kModeNames[] = {"off", "blackbox", "full", "full+trace"};
constexpr int kModeCount = 4;

// Starts the recorder per `mode_index` (0 = idle). Black-box keeps the default 8 MiB
// budget: that is the configuration a long run would actually fly with.
void StartMode(int mode_index) {
  if (mode_index == 0) {
    return;
  }
  replay::RecorderOptions options;
  options.mode =
      mode_index == 1 ? replay::RecorderMode::kBlackBox : replay::RecorderMode::kFull;
  options.force_tracing = mode_index == 3;
  ODF_CHECK(replay::Recorder::Global().Start(options));
}

void StopMode(int mode_index) {
  if (mode_index != 0) {
    replay::Recorder::Global().Stop();
  }
}

// Per-mode state for the fork sweep: one kernel + populated parent, created up front
// (before any recording) so mode rows differ only in recorder configuration.
struct ForkRig {
  std::unique_ptr<Kernel> kernel;
  Process* parent = nullptr;
};

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  const uint64_t fork_bytes = GbToBytes(std::min(config.max_gb, 2.0));
  const uint64_t fault_bytes = config.fast ? (8ULL << 20) : (32ULL << 20);
  // Interleaved rounds: every mode is measured in every round, so clock drift, cache
  // state, and scheduler noise land on all rows alike instead of biasing whichever mode
  // ran last. Microsecond-scale forks need the sample count; the medians below are over
  // rounds * reps forks per mode.
  const int rounds = config.fast ? 8 : 16;
  const int forks_per_round = config.fast ? 12 : 25;
  const double fault_seconds_per_round = (config.fast ? 0.5 : std::max(config.seconds / 8.0, 1.0)) /
                                         static_cast<double>(rounds);

  PrintHeader("Flight-recorder overhead — fork latency and fault throughput",
              "recording the full op schedule costs <3% on the paper's headline numbers");
  std::printf("Fork sweep: %llu MiB, %d rounds x %d reps; fault loop: %llu MiB, %.2f s per mode\n\n",
              static_cast<unsigned long long>(fork_bytes >> 20), rounds, forks_per_round,
              static_cast<unsigned long long>(fault_bytes >> 20),
              fault_seconds_per_round * rounds);

  // --- Fork latency (Fig. 2 shape: on-demand fork of a populated 2 GB parent) ----------
  ForkRig rigs[kModeCount];
  for (ForkRig& rig : rigs) {
    rig.kernel = std::make_unique<Kernel>();
    rig.parent = &MakePopulatedProcess(*rig.kernel, fork_bytes);
  }
  std::vector<double> fork_times[kModeCount];
  for (int round = 0; round < rounds; ++round) {
    for (int mode = 0; mode < kModeCount; ++mode) {
      StartMode(mode);
      std::vector<double> times =
          TimeForks(*rigs[mode].kernel, *rigs[mode].parent, ForkMode::kOnDemand,
                    forks_per_round);
      StopMode(mode);
      fork_times[mode].insert(fork_times[mode].end(), times.begin(), times.end());
    }
  }
  for (ForkRig& rig : rigs) {
    rig.kernel.reset();
  }

  TablePrinter fork_table({"Recorder", "Fork median (ms)", "Overhead (%)"});
  double fork_base = Percentile(fork_times[0], 50.0);
  for (int mode = 0; mode < kModeCount; ++mode) {
    double median = Percentile(fork_times[mode], 50.0);
    fork_table.AddRow({kModeNames[mode], TablePrinter::FormatDouble(median, 4),
                       TablePrinter::FormatDouble((median / fork_base - 1.0) * 100.0, 2)});
  }

  // --- Fault throughput (Fig. 9b shape: single-thread post-fork COW faulting) ----------
  struct FaultAccum {
    uint64_t faults = 0;
    double seconds = 0;
  };
  FaultAccum accum[kModeCount];
  {
    Kernel kernel;
    Process& parent =
        MakePopulatedProcess(kernel, fault_bytes, /*huge=*/false, /*materialize=*/true);
    Vaddr va = FirstVmaStart(parent);
    const uint64_t pages = fault_bytes / kPageSize;
    for (int round = 0; round < rounds; ++round) {
      for (int mode = 0; mode < kModeCount; ++mode) {
        StartMode(mode);
        while (accum[mode].seconds < fault_seconds_per_round * (round + 1)) {
          Process& child = kernel.Fork(parent, ForkMode::kOnDemand);
          Stopwatch sw;
          ODF_CHECK(child.TouchRange(va, fault_bytes, AccessType::kWrite));
          accum[mode].seconds += sw.ElapsedSeconds();
          accum[mode].faults += pages;
          kernel.Exit(child, 0);
          kernel.Wait(parent);
        }
        StopMode(mode);
      }
    }
  }

  TablePrinter fault_table({"Recorder", "Faults/s", "Overhead (%)"});
  double fault_base = static_cast<double>(accum[0].faults) / accum[0].seconds;
  for (int mode = 0; mode < kModeCount; ++mode) {
    double rate = static_cast<double>(accum[mode].faults) / accum[mode].seconds;
    fault_table.AddRow({kModeNames[mode], TablePrinter::FormatDouble(rate, 0),
                        TablePrinter::FormatDouble((1.0 - rate / fault_base) * 100.0, 2)});
  }

  fork_table.Print();
  std::printf("\n");
  fault_table.Print();
  WriteBenchJson("fig_replay_overhead", config,
                 {{"fork_latency", &fork_table}, {"fault_throughput", &fault_table}});
}

}  // namespace
}  // namespace odf

int main() {
#if !ODF_REPLAY_COMPILED
  std::printf("fig_replay_overhead: replay compiled out (-DODF_REPLAY=OFF); nothing to measure\n");
  return 0;
#else
  odf::Run();
  return 0;
#endif
}
