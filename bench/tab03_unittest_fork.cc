// Table 3: running each unit test in a forked child from the post-initialization state —
// fork vs on-demand-fork. Paper: fork 13.15 ms + test 0.18 ms (fork is 98.6% of the total)
// vs ODF 0.12 ms + test 0.21 ms (tests finally dominate). Test time under ODF is slightly
// higher because the first writes also copy shared PTE tables.
#include "bench/bench_common.h"
#include "src/apps/minidb.h"

namespace odf {
namespace {

struct Phases {
  double fork_ms = 0;
  double test_ms = 0;
};

Phases RunForked(Kernel& kernel, Process& parent, Vaddr db_meta, ForkMode mode, int reps) {
  RunningStats fork_ms;
  RunningStats test_ms;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Process& child = kernel.Fork(parent, mode);
    fork_ms.Add(sw.ElapsedMillis());

    MiniDb db = MiniDb::Attach(kernel, child, db_meta);
    sw.Restart();
    int64_t base = 1000 + r * 50;
    for (int64_t key = base; key < base + 10; ++key) {
      auto row = db.SelectByKey("t", key);
      ODF_CHECK(row.has_value());
      if (row->ints.at(0) % 2 == 0) {
        ODF_CHECK(db.DeleteByKey("t", key));
      } else {
        ODF_CHECK(db.UpdateByKey("t", key, -1));
      }
    }
    test_ms.Add(sw.ElapsedMillis());
    kernel.Exit(child, 0);
    kernel.Wait(parent);
  }
  return Phases{fork_ms.mean(), test_ms.mean()};
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t rows = config.fast ? 100000 : 1000000;
  if (const char* v = std::getenv("ODF_BENCH_TAB03_ROWS")) {
    rows = static_cast<uint64_t>(std::atoll(v));
  }
  int reps = config.fast ? 3 : 10;
  PrintHeader("Table 3 — per-test time with fork vs on-demand-fork (shared initialization)",
              "fork: 13.15 ms fork + 0.18 ms test (98.6% forking) | ODF: 0.12 + 0.21 ms");

  Kernel kernel;
  Process& parent = kernel.CreateProcess();
  MiniDb db = MiniDb::Create(kernel, parent, rows * 256 + (256ULL << 20));
  Rng rng(1);
  db.BulkLoadFixture("t", rows, 64, rng);

  Phases classic = RunForked(kernel, parent, db.meta_base(), ForkMode::kClassic, reps);
  Phases odf = RunForked(kernel, parent, db.meta_base(), ForkMode::kOnDemand, reps);

  auto fraction = [](double part, double total) {
    return " (" + TablePrinter::FormatPercent(part / total, 1) + ")";
  };
  double classic_total = classic.fork_ms + classic.test_ms;
  double odf_total = odf.fork_ms + odf.test_ms;

  TablePrinter table({"Phase", "Fork (ms)", "On-demand-fork (ms)"});
  table.AddRow({"Forking",
                TablePrinter::FormatDouble(classic.fork_ms, 3) +
                    fraction(classic.fork_ms, classic_total),
                TablePrinter::FormatDouble(odf.fork_ms, 3) + fraction(odf.fork_ms, odf_total)});
  table.AddRow({"Testing",
                TablePrinter::FormatDouble(classic.test_ms, 3) +
                    fraction(classic.test_ms, classic_total),
                TablePrinter::FormatDouble(odf.test_ms, 3) + fraction(odf.test_ms, odf_total)});
  table.AddRow({"Total", TablePrinter::FormatDouble(classic_total, 3),
                TablePrinter::FormatDouble(odf_total, 3)});
  table.Print();
  WriteBenchJson("tab03_unittest_fork", config, {{"unittest_fork", &table}});
  std::printf("\nFork-time reduction: %.1f%% (paper: 99.1%%)\n",
              (classic.fork_ms - odf.fork_ms) / classic.fork_ms * 100.0);
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
