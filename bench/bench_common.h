// Shared configuration and helpers for the paper-reproduction benchmark binaries.
//
// Environment knobs (all optional):
//   ODF_BENCH_MAX_GB   largest simulated mapping in the Fig. 2/4/7 sweeps (default 8; the
//                      paper goes to 50 — set 50 to match, given ~4 GB of RAM headroom)
//   ODF_BENCH_REPS     repetitions per data point (default 5, like the paper)
//   ODF_BENCH_SECONDS  duration of throughput benchmarks (default 10)
//   ODF_BENCH_FAST     set to 1 for a quick smoke run (small sizes, 1 rep)
#ifndef ODF_BENCH_BENCH_COMMON_H_
#define ODF_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "src/proc/kernel.h"
#include "src/util/log.h"
#include "src/util/stats.h"
#include "src/util/stopwatch.h"
#include "src/util/table_printer.h"

namespace odf {

struct BenchConfig {
  double max_gb = 8.0;
  int reps = 5;
  double seconds = 10.0;
  bool fast = false;

  static BenchConfig FromEnv() {
    BenchConfig config;
    if (const char* v = std::getenv("ODF_BENCH_MAX_GB")) {
      config.max_gb = std::atof(v);
    }
    if (const char* v = std::getenv("ODF_BENCH_REPS")) {
      config.reps = std::atoi(v);
    }
    if (const char* v = std::getenv("ODF_BENCH_SECONDS")) {
      config.seconds = std::atof(v);
    }
    if (const char* v = std::getenv("ODF_BENCH_FAST")) {
      if (std::atoi(v) != 0) {
        config.fast = true;
        config.max_gb = std::min(config.max_gb, 2.0);
        config.reps = 1;
        config.seconds = std::min(config.seconds, 2.0);
      }
    }
    return config;
  }
};

// The paper's x-axis: 0.5, 1, 2, 4, ... GB up to max_gb (log-scale sweep; the paper samples
// every 512 MB but plots on a log axis — the doubling sweep reproduces the plotted points).
inline std::vector<double> SizeSweepGb(double max_gb) {
  std::vector<double> sizes;
  double gb = 0.5;
  for (; gb <= max_gb + 1e-9; gb *= 2) {
    sizes.push_back(gb);
  }
  // Include the ceiling itself when the doubling ladder skips it (e.g. max 50 -> ..., 32, 50).
  if (!sizes.empty() && sizes.back() < max_gb - 1e-9) {
    sizes.push_back(max_gb);
  }
  return sizes;
}

inline uint64_t GbToBytes(double gb) {
  return static_cast<uint64_t>(gb * 1024.0 * 1024.0 * 1024.0);
}

// Creates a process with `bytes` of populated private anonymous memory (every page mapped;
// data materialised only if `materialize`).
inline Process& MakePopulatedProcess(Kernel& kernel, uint64_t bytes, bool huge = false,
                                     bool materialize = false) {
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(bytes, kProtRead | kProtWrite, huge);
  p.address_space().PopulateRange(va, bytes);
  if (materialize) {
    ODF_CHECK(p.MemsetMemory(va, std::byte{0x5a}, bytes));
  }
  return p;
}

inline Vaddr FirstVmaStart(Process& p) {
  return p.address_space().vmas().begin()->second.start;
}

// Times `reps` forks of `parent` (child exits immediately, as in the paper's Fig. 1 loop);
// returns per-fork milliseconds.
inline std::vector<double> TimeForks(Kernel& kernel, Process& parent, ForkMode mode,
                                     int reps) {
  std::vector<double> times_ms;
  times_ms.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Process& child = kernel.Fork(parent, mode);
    times_ms.push_back(sw.ElapsedMillis());
    kernel.Exit(child, 0);
    kernel.Wait(parent);
  }
  return times_ms;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace odf

#endif  // ODF_BENCH_BENCH_COMMON_H_
