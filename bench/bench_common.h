// Shared configuration and helpers for the paper-reproduction benchmark binaries.
//
// Environment knobs (all optional):
//   ODF_BENCH_MAX_GB    largest simulated mapping in the Fig. 2/4/7 sweeps (default 8; the
//                       paper goes to 50 — set 50 to match, given ~4 GB of RAM headroom)
//   ODF_BENCH_REPS      repetitions per data point (default 5, like the paper)
//   ODF_BENCH_SECONDS   duration of throughput benchmarks (default 10)
//   ODF_BENCH_FAST      set to 1 for a quick smoke run (small sizes, 1 rep)
//   ODF_BENCH_JSON      set to 0 to suppress the BENCH_<name>.json sidecar
//   ODF_BENCH_JSON_DIR  directory for BENCH_<name>.json (default: current directory)
#ifndef ODF_BENCH_BENCH_COMMON_H_
#define ODF_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/proc/kernel.h"
#include "src/trace/json.h"
#include "src/trace/metrics.h"
#include "src/trace/trace.h"
#include "src/util/log.h"
#include "src/util/stats.h"
#include "src/util/stopwatch.h"
#include "src/util/table_printer.h"

namespace odf {

struct BenchConfig {
  double max_gb = 8.0;
  int reps = 5;
  double seconds = 10.0;
  bool fast = false;

  static BenchConfig FromEnv() {
    BenchConfig config;
    if (const char* v = std::getenv("ODF_BENCH_MAX_GB")) {
      config.max_gb = std::atof(v);
    }
    if (const char* v = std::getenv("ODF_BENCH_REPS")) {
      config.reps = std::atoi(v);
    }
    if (const char* v = std::getenv("ODF_BENCH_SECONDS")) {
      config.seconds = std::atof(v);
    }
    if (const char* v = std::getenv("ODF_BENCH_FAST")) {
      if (std::atoi(v) != 0) {
        config.fast = true;
        config.max_gb = std::min(config.max_gb, 2.0);
        config.reps = 1;
        config.seconds = std::min(config.seconds, 2.0);
      }
    }
    return config;
  }
};

// The paper's x-axis: 0.5, 1, 2, 4, ... GB up to max_gb (log-scale sweep; the paper samples
// every 512 MB but plots on a log axis — the doubling sweep reproduces the plotted points).
inline std::vector<double> SizeSweepGb(double max_gb) {
  std::vector<double> sizes;
  double gb = 0.5;
  for (; gb <= max_gb + 1e-9; gb *= 2) {
    sizes.push_back(gb);
  }
  // Include the ceiling itself when the doubling ladder skips it (e.g. max 50 -> ..., 32, 50).
  if (!sizes.empty() && sizes.back() < max_gb - 1e-9) {
    sizes.push_back(max_gb);
  }
  return sizes;
}

inline uint64_t GbToBytes(double gb) {
  return static_cast<uint64_t>(gb * 1024.0 * 1024.0 * 1024.0);
}

// Creates a process with `bytes` of populated private anonymous memory (every page mapped;
// data materialised only if `materialize`).
inline Process& MakePopulatedProcess(Kernel& kernel, uint64_t bytes, bool huge = false,
                                     bool materialize = false) {
  Process& p = kernel.CreateProcess();
  Vaddr va = p.Mmap(bytes, kProtRead | kProtWrite, huge);
  p.address_space().PopulateRange(va, bytes);
  if (materialize) {
    ODF_CHECK(p.MemsetMemory(va, std::byte{0x5a}, bytes));
  }
  return p;
}

inline Vaddr FirstVmaStart(Process& p) {
  return p.address_space().vmas().begin()->second.start;
}

// Times `reps` forks of `parent` (child exits immediately, as in the paper's Fig. 1 loop);
// returns per-fork milliseconds.
inline std::vector<double> TimeForks(Kernel& kernel, Process& parent, ForkMode mode,
                                     int reps) {
  std::vector<double> times_ms;
  times_ms.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    Process& child = kernel.Fork(parent, mode);
    times_ms.push_back(sw.ElapsedMillis());
    kernel.Exit(child, 0);
    kernel.Wait(parent);
  }
  return times_ms;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

// One table of a benchmark's output, as (section name, printed table) for the JSON sidecar.
struct BenchSection {
  std::string name;
  const TablePrinter* table;
};

namespace bench_internal {

// Emits a table cell as a JSON number when the whole cell parses as one ("3.14", "42"),
// otherwise as a string ("on-demand-fork", "1.2 GB"). Keeps the sidecar directly loadable
// into analysis tools without per-bench schemas.
inline void WriteCell(JsonWriter& json, const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    double value = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size()) {
      json.Value(value);
      return;
    }
  }
  json.Value(cell);
}

}  // namespace bench_internal

// Writes BENCH_<name>.json next to the benchmark (schema: docs/observability.md). Every
// fig*/tab*/abl* binary calls this after printing its tables so the bench harness can
// consume results without scraping stdout. Honors ODF_BENCH_JSON / ODF_BENCH_JSON_DIR.
inline void WriteBenchJson(const std::string& name, const BenchConfig& config,
                           const std::vector<BenchSection>& sections) {
  if (const char* v = std::getenv("ODF_BENCH_JSON")) {
    if (std::atoi(v) == 0) {
      return;
    }
  }
  std::string path = "BENCH_" + name + ".json";
  if (const char* dir = std::getenv("ODF_BENCH_JSON_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out) {
    ODF_LOG(kWarn) << "cannot write " << path;
    return;
  }
  JsonWriter json(out);
  json.BeginObject();
  json.Key("schema_version").Value(1);
  json.Key("bench").Value(name);
  json.Key("config").BeginObject();
  json.Key("max_gb").Value(config.max_gb);
  json.Key("reps").Value(config.reps);
  json.Key("seconds").Value(config.seconds);
  json.Key("fast").Value(config.fast);
  json.EndObject();
  json.Key("sections").BeginArray();
  for (const BenchSection& section : sections) {
    json.BeginObject();
    json.Key("name").Value(section.name);
    json.Key("columns").BeginArray();
    for (const std::string& header : section.table->headers()) {
      json.Value(header);
    }
    json.EndArray();
    json.Key("rows").BeginArray();
    for (const auto& row : section.table->rows()) {
      json.BeginArray();
      for (const std::string& cell : row) {
        bench_internal::WriteCell(json, cell);
      }
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  // Counter snapshot at exit: lets the harness correlate bench results with kernel-wide
  // activity (e.g. COW fault volume behind a latency series) without a second run.
  json.Key("vmstat").BeginObject();
  for (const auto& [counter, value] : MetricsRegistry::Global().SnapshotCounters()) {
    json.Key(counter).Value(value);
  }
  json.EndObject();
  // Registered latency histograms (mm_lock_wait et al.): contention summaries so a bench
  // result can be read next to how hard the MM locks were fought over while it ran.
  json.Key("histograms").BeginObject();
  for (const auto& [hist_name, histogram] : MetricsRegistry::Global().Histograms()) {
    json.Key(hist_name).BeginObject();
    json.Key("count").Value(histogram->TotalCount());
    json.Key("p50_us").Value(histogram->PercentileMicros(50));
    json.Key("p99_us").Value(histogram->PercentileMicros(99));
    json.Key("mean_us").Value(histogram->MeanMicros());
    json.EndObject();
  }
  json.EndObject();
  // Per-ring append/overwrite accounting: a wrapped trace ring silently loses events, so
  // any trace-derived number in the sections above must be read next to these counts.
  json.Key("trace_rings").BeginArray();
  for (const auto& ring : trace::Tracer::Global().CollectRingStats()) {
    json.BeginObject();
    json.Key("tid").Value(static_cast<uint64_t>(ring.tid));
    json.Key("appended").Value(ring.appended);
    json.Key("overwritten").Value(ring.overwritten);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  out << "\n";
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace odf

#endif  // ODF_BENCH_BENCH_COMMON_H_
