#!/usr/bin/env bash
# Builds the default preset and runs every paper-reproduction benchmark (fig*/tab*/abl*,
# plus the exp* extensions), collecting the BENCH_<name>.json sidecars into one directory.
#
# Usage:
#   bench/run_all.sh [output-dir]
#
# The default output directory is bench/baseline — the committed reference sweep
# (.gitignore carves it out of the global BENCH_*.json ignore). Point it somewhere else to
# compare a work-in-progress tree against that baseline.
#
# Environment:
#   ODF_BENCH_FAST=1   quick smoke sweep (small sizes, 1 rep, short durations) — the
#                      default here; set ODF_BENCH_FAST=0 for the full paper-scale sweep.
#   Other ODF_BENCH_*  knobs pass through to the binaries (see bench/bench_common.h).
set -euo pipefail

cd "$(dirname "$0")/.."

out_dir="${1:-bench/baseline}"
mkdir -p "${out_dir}"
out_dir="$(cd "${out_dir}" && pwd)"

: "${ODF_BENCH_FAST:=1}"
export ODF_BENCH_FAST
export ODF_BENCH_JSON=1
export ODF_BENCH_JSON_DIR="${out_dir}"

cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)"

benches=()
for src in bench/fig*.cc bench/tab*.cc bench/abl*.cc bench/exp*.cc; do
  benches+=("$(basename "${src}" .cc)")
done

echo
echo "Running ${#benches[@]} benchmarks (ODF_BENCH_FAST=${ODF_BENCH_FAST}); JSON -> ${out_dir}"
failures=()
for bench in "${benches[@]}"; do
  echo
  echo ">>> ${bench}"
  # Run every bench even after a failure, but never report a green sweep with a crashed
  # bench in it: collect and propagate the failures at the end.
  if ! "./build/bench/${bench}"; then
    echo "!!! ${bench} exited nonzero" >&2
    failures+=("${bench}")
  fi
done

echo
echo "Done. Sidecars:"
ls -1 "${out_dir}"/BENCH_*.json

if ((${#failures[@]})); then
  echo
  echo "FAILED benches: ${failures[*]}" >&2
  exit 1
fi
