// Reclaim-pressure figure (docs/reclaim.md): fork latency and fault throughput with the
// frame pool held at ~90% occupancy by a resident working set, while a churn region pushes
// total demand past 100% so the reclaim subsystem (src/reclaim) must continuously evict.
// Run once with direct reclaim only and once with the kswapd daemon balancing in the
// background — the comparison shows how much of the reclaim cost the daemon absorbs off
// the fault path. No paper counterpart; this extends the §4 robustness story.
#include "bench/bench_common.h"
#include "src/util/rng.h"

namespace odf {
namespace {

constexpr uint64_t kPoolFrames = 4096;              // 16 MiB simulated pool.
constexpr uint64_t kResidentPages = kPoolFrames * 9 / 10;  // The 90% occupancy floor.
constexpr uint64_t kChurnPages = kPoolFrames / 4;   // Pushes demand to ~115% of the pool.

struct PressureResult {
  std::vector<double> fork_ms;      // On-demand fork latency under pressure.
  double touches_per_sec = 0;       // Random-page write throughput over the working set.
  double swapins_per_sec = 0;       // Of which: faults that came back from the device.
  uint64_t pgsteal = 0;
  uint64_t kswapd_wakes = 0;
  uint64_t direct_reclaims = 0;
};

PressureResult RunConfiguration(bool with_kswapd, const BenchConfig& config) {
  Kernel kernel;
  kernel.SetMemoryLimitFrames(kPoolFrames);
  if (with_kswapd) {
    kernel.StartKswapd();
  }

  Process& p = kernel.CreateProcess();
  Vaddr resident = p.Mmap(kResidentPages * kPageSize, kProtRead | kProtWrite);
  ODF_CHECK(p.MemsetMemory(resident, std::byte{0x5a}, kResidentPages * kPageSize));
  Vaddr churn = p.Mmap(kChurnPages * kPageSize, kProtRead | kProtWrite);
  ODF_CHECK(p.MemsetMemory(churn, std::byte{0xa5}, kChurnPages * kPageSize));

  PressureResult result;
  uint64_t pgsteal_before = ReadVm(VmCounter::k_pgsteal);
  uint64_t wakes_before = ReadVm(VmCounter::k_kswapd_wake);
  uint64_t direct_before = ReadVm(VmCounter::k_direct_reclaim);
  uint64_t swapin_before = ReadVm(VmCounter::k_pgfault_swap_in);

  // Fork latency while the pool sits at ~90% residency and reclaim is live.
  result.fork_ms = TimeForks(kernel, p, ForkMode::kOnDemand, config.reps);

  // Fault throughput: random single-byte writes across the over-committed working set.
  // Most land on resident pages; the rest refault evicted ones, each refault forcing an
  // eviction elsewhere — the steady-state thrash the reclaim LRU is built for.
  constexpr uint64_t kTotalPages = kResidentPages + kChurnPages;
  Rng rng(0x9e37);
  uint64_t touches = 0;
  Stopwatch sw;
  while (sw.ElapsedSeconds() < config.seconds) {
    for (int batch = 0; batch < 256; ++batch) {
      uint64_t page = rng.NextBelow(kTotalPages);
      Vaddr va = page < kResidentPages
                     ? resident + page * kPageSize
                     : churn + (page - kResidentPages) * kPageSize;
      std::byte value{static_cast<unsigned char>(page)};
      ODF_CHECK(p.WriteMemory(va, std::span(&value, 1)));
      ++touches;
    }
  }
  double elapsed = sw.ElapsedSeconds();
  result.touches_per_sec = static_cast<double>(touches) / elapsed;
  result.swapins_per_sec =
      static_cast<double>(ReadVm(VmCounter::k_pgfault_swap_in) - swapin_before) / elapsed;
  result.pgsteal = ReadVm(VmCounter::k_pgsteal) - pgsteal_before;
  result.kswapd_wakes = ReadVm(VmCounter::k_kswapd_wake) - wakes_before;
  result.direct_reclaims = ReadVm(VmCounter::k_direct_reclaim) - direct_before;
  if (with_kswapd) {
    kernel.StopKswapd();
  }
  return result;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Reclaim pressure — fork latency and fault throughput at 90% pool occupancy",
              "extension of §4 robustness: kswapd vs direct-reclaim-only under overcommit");
  std::printf("Pool: %llu frames; resident set: %llu pages; churn set: %llu pages\n\n",
              static_cast<unsigned long long>(kPoolFrames),
              static_cast<unsigned long long>(kResidentPages),
              static_cast<unsigned long long>(kChurnPages));

  PressureResult direct_only = RunConfiguration(/*with_kswapd=*/false, config);
  PressureResult with_kswapd = RunConfiguration(/*with_kswapd=*/true, config);

  TablePrinter table({"Configuration", "ODF fork (ms, median)", "touches/s", "swap-ins/s",
                      "pgsteal", "kswapd wakes", "direct reclaims"});
  auto add_row = [&table](const char* name, const PressureResult& r) {
    table.AddRow({name, TablePrinter::FormatDouble(Percentile(r.fork_ms, 50), 3),
                  TablePrinter::FormatDouble(r.touches_per_sec, 0),
                  TablePrinter::FormatDouble(r.swapins_per_sec, 0),
                  std::to_string(r.pgsteal), std::to_string(r.kswapd_wakes),
                  std::to_string(r.direct_reclaims)});
  };
  add_row("direct reclaim only", direct_only);
  add_row("kswapd running", with_kswapd);
  table.Print();
  WriteBenchJson("fig_reclaim_pressure", config, {{"reclaim_pressure", &table}});

  std::printf("\nFault-throughput ratio (kswapd/direct): %.2fx\n",
              with_kswapd.touches_per_sec / direct_only.touches_per_sec);
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
