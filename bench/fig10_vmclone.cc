// Figure 10: TriforceAFL-style kernel fuzzing throughput — the VM (guest image + bytecode
// guest kernel) is cloned per input with fork vs on-demand-fork. Paper: 91 vs 145 execs/s
// (+59.3%) on a 188 MB QEMU process.
#include "bench/bench_common.h"
#include "src/apps/vmclone.h"

namespace odf {
namespace {

struct CampaignResult {
  std::vector<double> per_bucket;
  double avg = 0;
  uint64_t executions = 0;
};

CampaignResult RunCampaign(ForkMode mode, uint64_t image_bytes, double seconds) {
  Kernel kernel;
  VmConfig config;
  config.image_bytes = image_bytes;
  config.fork_mode = mode;
  config.max_steps_per_input = 8000;
  VirtualMachine vm = VirtualMachine::Boot(kernel, config);

  Rng rng(9);
  CampaignResult result;
  Stopwatch total;
  const double kBucketSeconds = seconds / 5.0;
  for (int bucket = 0; bucket < 5; ++bucket) {
    uint64_t before = result.executions;
    Stopwatch bucket_timer;
    while (bucket_timer.ElapsedSeconds() < kBucketSeconds) {
      std::vector<uint8_t> input(64 + rng.NextBelow(128));
      for (auto& b : input) {
        b = static_cast<uint8_t>(rng.Next());
      }
      vm.RunInputInClone(input);
      ++result.executions;
    }
    result.per_bucket.push_back(static_cast<double>(result.executions - before) /
                                bucket_timer.ElapsedSeconds());
  }
  result.avg = static_cast<double>(result.executions) / total.ElapsedSeconds();
  return result;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  uint64_t image_bytes = config.fast ? (16ULL << 20) : (188ULL << 20);
  if (const char* v = std::getenv("ODF_BENCH_FIG10_MB")) {
    image_bytes = static_cast<uint64_t>(std::atoll(v)) << 20;
  }
  PrintHeader("Fig. 10 — VM-cloning fuzz throughput (TriforceAFL analog)",
              "91 execs/s (fork) vs 145 execs/s (on-demand-fork), +59.3%, 188 MB VM");
  std::printf("Guest image: %llu MB\n\n",
              static_cast<unsigned long long>(image_bytes >> 20));

  CampaignResult classic = RunCampaign(ForkMode::kClassic, image_bytes, config.seconds);
  CampaignResult odf = RunCampaign(ForkMode::kOnDemand, image_bytes, config.seconds);

  TablePrinter table({"Time bucket", "fork (execs/s)", "on-demand-fork (execs/s)"});
  for (size_t i = 0; i < classic.per_bucket.size(); ++i) {
    table.AddRow({"t" + std::to_string(i),
                  TablePrinter::FormatDouble(classic.per_bucket[i], 1),
                  TablePrinter::FormatDouble(odf.per_bucket[i], 1)});
  }
  table.AddRow({"AVERAGE", TablePrinter::FormatDouble(classic.avg, 1),
                TablePrinter::FormatDouble(odf.avg, 1)});
  table.Print();
  WriteBenchJson("fig10_vmclone", config, {{"vmclone_throughput", &table}});
  std::printf("\nThroughput improvement: +%.1f%% (paper: +59.3%%)\n",
              (odf.avg - classic.avg) / classic.avg * 100.0);
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
