// Extension experiment 12 — serverless invocation latency (paper §2.4.3). The paper
// motivates ODF for lambda cloning but does not evaluate it; this bench completes the story:
// cold start vs warm start via fork vs warm start via on-demand-fork, on a template with a
// populated runtime image + precomputed function state.
#include "bench/bench_common.h"
#include "src/apps/lambda.h"
#include "src/util/latency_recorder.h"

namespace odf {
namespace {

void RunMode(ForkMode mode, int invocations, LatencyRecorder* startup,
             LatencyRecorder* end_to_end, double* deploy_seconds, uint64_t* checksum) {
  Kernel kernel;
  LambdaConfig config;
  config.fork_mode = mode;
  LambdaPlatform platform = LambdaPlatform::Deploy(kernel, config);
  *deploy_seconds = platform.deploy_seconds();
  Rng rng(5);
  for (int i = 0; i < invocations; ++i) {
    uint8_t payload[32];
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    LambdaInvocation result = platform.Invoke(payload);
    startup->Record(result.startup_us);
    end_to_end->Record(result.startup_us + result.run_us);
    *checksum ^= result.result;
  }
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  int invocations = config.fast ? 20 : 200;
  PrintHeader("Exp. 12 — serverless warm-start latency (lambda cloning, §2.4.3)",
              "fork startup scales with template size; ODF keeps clone startup in the "
              "microseconds");

  // Cold-start baseline (one sample is representative; it is seconds, not microseconds).
  Kernel cold_kernel;
  LambdaConfig cold_config;
  LambdaPlatform cold_platform = LambdaPlatform::Deploy(cold_kernel, cold_config);
  uint8_t payload[32] = {1, 2, 3};
  LambdaInvocation cold = cold_platform.InvokeCold(payload);

  LatencyRecorder classic_startup;
  LatencyRecorder classic_total;
  LatencyRecorder odf_startup;
  LatencyRecorder odf_total;
  double deploy_classic = 0;
  double deploy_odf = 0;
  uint64_t checksum_classic = 0;
  uint64_t checksum_odf = 0;
  RunMode(ForkMode::kClassic, invocations, &classic_startup, &classic_total, &deploy_classic,
          &checksum_classic);
  RunMode(ForkMode::kOnDemand, invocations, &odf_startup, &odf_total, &deploy_odf,
          &checksum_odf);
  ODF_CHECK(checksum_classic == checksum_odf) << "handlers must compute identical results";

  TablePrinter table({"Strategy", "startup p50 (us)", "startup p99 (us)",
                      "end-to-end p50 (us)"});
  table.AddRow({"cold start (no template)", TablePrinter::FormatDouble(cold.startup_us, 0),
                "-", TablePrinter::FormatDouble(cold.startup_us + cold.run_us, 0)});
  table.AddRow({"warm, fork", TablePrinter::FormatDouble(classic_startup.PercentileValue(50), 1),
                TablePrinter::FormatDouble(classic_startup.PercentileValue(99), 1),
                TablePrinter::FormatDouble(classic_total.PercentileValue(50), 1)});
  table.AddRow({"warm, on-demand-fork",
                TablePrinter::FormatDouble(odf_startup.PercentileValue(50), 1),
                TablePrinter::FormatDouble(odf_startup.PercentileValue(99), 1),
                TablePrinter::FormatDouble(odf_total.PercentileValue(50), 1)});
  table.Print();
  WriteBenchJson("exp12_lambda_startup", config, {{"lambda_startup", &table}});
  std::printf(
      "\nTemplate deploy (amortised once): %.2f s. Startup reduction vs fork: %.1fx.\n"
      "Shape check: cold >> warm-fork >> warm-ODF, with ODF startup in single-digit us.\n",
      deploy_odf, classic_startup.PercentileValue(50) / odf_startup.PercentileValue(50));
}

}  // namespace
}  // namespace odf

int main() {
  odf::Run();
  return 0;
}
